// Fault-schedule property sweeps (see docs/TESTING.md).
//
// The contract under test: with a FaultPlan attached, every operation
// either completes with the byte-exact (and payload-stable) fault-free
// result, or throws the typed error (IoError / NetError) — never an
// abort, never corrupt data, never leaked device blocks. And the schedule
// is a pure function of the seed: replaying a seed reproduces the exact
// fault sequence (schedule_hash), the exact stats, and the exact output.
//
// Seed counts drop under sanitizers (10-20x slowdown); every case logs its
// seed via SCOPED_TRACE so a CI failure replays with --gtest_filter.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "../test_support.hpp"
#include "core/mergepath.hpp"
#include "dist/distributed_merge.hpp"
#include "dist/netsim.hpp"
#include "extmem/block_device.hpp"
#include "extmem/external_sort.hpp"
#include "extmem/run_file.hpp"
#include "fault/fault.hpp"
#include "util/data_gen.hpp"
#include "util/rng.hpp"
#include "util/threading.hpp"

#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MP_TEST_SANITIZED 1
#endif
#endif
#if !defined(MP_TEST_SANITIZED) && \
    (defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__))
#define MP_TEST_SANITIZED 1
#endif
#ifndef MP_TEST_SANITIZED
#define MP_TEST_SANITIZED 0
#endif

namespace mp {
namespace {

#if MP_TEST_SANITIZED
constexpr std::uint64_t kSweepSeeds = 24;
#else
constexpr std::uint64_t kSweepSeeds = 200;
#endif

constexpr double kFaultRate = 0.10;  // the acceptance-criteria rate

extmem::DeviceConfig small_blocks() {
  extmem::DeviceConfig config;
  config.block_bytes = 1024;  // 128 KeyedRecords per block
  return config;
}

std::vector<KeyedRecord> make_records(std::size_t n, std::uint64_t seed) {
  // Tiny key universe => heavy duplication => stability is load-bearing.
  Xoshiro256 rng(seed);
  std::vector<KeyedRecord> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = KeyedRecord{static_cast<std::int32_t>(rng.bounded(64)),
                         static_cast<std::uint32_t>(i)};
  return out;
}

struct SortOutcome {
  bool completed = false;
  std::vector<KeyedRecord> result;
  std::uint64_t schedule_hash = 0;
  fault::FaultStats fault_stats;
  std::uint64_t retries = 0;
  std::uint64_t faults = 0;
  std::uint64_t leaked_blocks = 0;
};

/// One full external sort under a seeded 10% fault schedule. Returns what
/// happened; IoError is a legal outcome (typed), an abort is not.
SortOutcome run_faulty_sort(const std::vector<KeyedRecord>& data,
                            std::uint64_t seed) {
  extmem::BlockDevice device(small_blocks());
  fault::FaultPlan plan(fault::FaultConfig{seed, kFaultRate, 250.0});
  fault::ScopedInjector injector(device, plan);
  extmem::ExternalSortConfig config;
  config.memory_elems = 256;  // many runs + several merge passes
  config.fan_in = 3;
  config.exec.threads = 2;
  SortOutcome outcome;
  try {
    extmem::ExternalSortReport report;
    outcome.result =
        extmem::external_sort_vector(device, data, config, &report);
    outcome.completed = true;
    outcome.retries = report.io_retries;
    outcome.faults = report.faults_injected;
  } catch (const extmem::IoError&) {
    outcome.completed = false;
  }
  // Success releases everything (the vector wrapper owns both runs);
  // failure must too — leaked blocks mean a broken recovery path.
  outcome.leaked_blocks = device.live_blocks();
  outcome.schedule_hash = plan.schedule_hash();
  outcome.fault_stats = plan.stats();
  return outcome;
}

TEST(FaultSweepExtmem, SortedOrTypedErrorAcrossSeeds) {
  if (!fault::kFaultCompiledIn) GTEST_SKIP() << "MP_FAULT=0 build";
  const auto data = make_records(1500, 0xfeed);
  auto expected = data;
  std::stable_sort(expected.begin(), expected.end());
  std::uint64_t completed = 0, injected_total = 0;
  for (std::uint64_t seed = 0; seed < kSweepSeeds; ++seed) {
    SCOPED_TRACE(::testing::Message() << "fault seed=" << seed);
    const SortOutcome outcome = run_faulty_sort(data, seed);
    injected_total += outcome.fault_stats.injected;
    ASSERT_EQ(outcome.leaked_blocks, 0u) << "leaked device blocks";
    if (!outcome.completed) continue;  // typed failure: legal, just rare
    ++completed;
    // Payload-exact: the faulty run's output is the stable sort, bit for
    // bit, despite retried/redone transfers.
    ASSERT_EQ(outcome.result, expected);
  }
  // At a 10% recoverable rate with 8 retry attempts, effectively every
  // seed must complete, and the schedules must actually be injecting.
  EXPECT_GT(injected_total, kSweepSeeds);  // >1 fault per seed on average
  EXPECT_GE(completed, kSweepSeeds - 1);
}

TEST(FaultSweepExtmem, SameSeedReplaysByteIdentically) {
  if (!fault::kFaultCompiledIn) GTEST_SKIP() << "MP_FAULT=0 build";
  const auto data = make_records(1200, 0xd00d);
  const std::uint64_t seeds[] = {1, 7, 42, 0x5eed};
  for (const std::uint64_t seed : seeds) {
    SCOPED_TRACE(::testing::Message() << "fault seed=" << seed);
    const SortOutcome first = run_faulty_sort(data, seed);
    const SortOutcome second = run_faulty_sort(data, seed);
    // Identical schedule (hash + per-kind stats) and identical outcome.
    ASSERT_EQ(first.schedule_hash, second.schedule_hash);
    ASSERT_TRUE(first.fault_stats == second.fault_stats);
    ASSERT_EQ(first.completed, second.completed);
    ASSERT_EQ(first.result, second.result);
    ASSERT_EQ(first.retries, second.retries);
    ASSERT_EQ(first.faults, second.faults);
  }
}

/// Backoff jitter (RetryPolicy::jitter) draws from the fault plan's seeded
/// jitter stream — a stream independent of the decision stream — so arming
/// it must not perturb the fault schedule, and replaying a seed must
/// reproduce the jittered waits bit-exactly.
TEST(FaultSweepExtmem, JitteredBackoffPreservesReplayAndSchedule) {
  if (!fault::kFaultCompiledIn) GTEST_SKIP() << "MP_FAULT=0 build";
  const auto data = make_records(1400, 0x7177);
  auto expected = data;
  std::stable_sort(expected.begin(), expected.end());
  struct JitterOutcome {
    std::vector<KeyedRecord> result;
    std::uint64_t schedule_hash = 0;
    std::uint64_t retries = 0;
    double modeled_us = 0;
  };
  const auto run_with_jitter = [&](std::uint64_t seed, double jitter) {
    extmem::BlockDevice device(small_blocks());
    fault::FaultPlan plan(fault::FaultConfig{seed, kFaultRate, 250.0});
    fault::ScopedInjector injector(device, plan);
    extmem::ExternalSortConfig config;
    config.memory_elems = 256;
    config.fan_in = 3;
    config.exec.threads = 2;
    config.retry.max_attempts = 16;
    config.retry.jitter = jitter;
    JitterOutcome outcome;
    extmem::ExternalSortReport report;
    outcome.result =
        extmem::external_sort_vector(device, data, config, &report);
    outcome.retries = report.io_retries;
    outcome.schedule_hash = plan.schedule_hash();
    outcome.modeled_us = device.modeled_io_us();
    return outcome;
  };
  for (const std::uint64_t seed : {3ull, 19ull, 0x6a5ull}) {
    SCOPED_TRACE(::testing::Message() << "fault seed=" << seed);
    const JitterOutcome jittered = run_with_jitter(seed, 0.5);
    const JitterOutcome replay = run_with_jitter(seed, 0.5);
    const JitterOutcome straight = run_with_jitter(seed, 0.0);
    // Schedule is untouched by jitter draws, and identical across replays.
    ASSERT_EQ(jittered.schedule_hash, straight.schedule_hash);
    ASSERT_EQ(jittered.schedule_hash, replay.schedule_hash);
    ASSERT_EQ(jittered.retries, straight.retries);
    // Replay is exact down to the modeled jittered waits.
    ASSERT_EQ(replay.retries, jittered.retries);
    ASSERT_EQ(replay.modeled_us, jittered.modeled_us);
    ASSERT_EQ(replay.result, jittered.result);
    // Output bytes are jitter-independent and correct.
    ASSERT_EQ(jittered.result, expected);
    ASSERT_EQ(straight.result, expected);
    // Jitter scales each wait into [1 - j, 1] × backoff: with any retries
    // on the schedule, total modeled time can only shrink.
    ASSERT_GT(jittered.retries, 0u);
    ASSERT_LT(jittered.modeled_us, straight.modeled_us);
  }
}

TEST(FaultSweepExtmem, PermanentFaultIsTypedAndLeakFree) {
  if (!fault::kFaultCompiledIn) GTEST_SKIP() << "MP_FAULT=0 build";
  const auto data = make_records(1500, 0xabad);
  // Kill the device at a spread of points in the op stream: before run
  // formation, mid-runs, and mid-merge must all fail typed and clean.
  for (const std::uint64_t from : {0ull, 5ull, 20ull, 45ull, 80ull}) {
    for (const fault::FaultKind kind :
         {fault::FaultKind::kMedia, fault::FaultKind::kNoSpace}) {
      SCOPED_TRACE(::testing::Message()
                   << "fail_from=" << from << " kind=" << to_string(kind));
      extmem::BlockDevice device(small_blocks());
      fault::FaultPlan plan;
      plan.fail_from(from, kind);
      fault::ScopedInjector injector(device, plan);
      extmem::ExternalSortConfig config;
      config.memory_elems = 256;
      config.fan_in = 2;
      config.exec.threads = 2;
      ASSERT_THROW(extmem::external_sort_vector(device, data, config),
                   extmem::IoError);
      ASSERT_EQ(device.live_blocks(), 0u) << "leaked temp-run blocks";
    }
  }
}

TEST(FaultSweepExtmem, EnospcFromCapacityRecoversCleanly) {
  if (!fault::kFaultCompiledIn) GTEST_SKIP() << "MP_FAULT=0 build";
  // A device too small for the sort's working set: the failure is the
  // capacity model itself, no plan needed — and retrying on a bigger
  // device must succeed with the same bytes.
  const auto data = make_records(2000, 0xcafe);
  auto expected = data;
  std::stable_sort(expected.begin(), expected.end());
  extmem::ExternalSortConfig config;
  config.memory_elems = 256;
  config.fan_in = 2;
  config.exec.threads = 2;

  extmem::DeviceConfig tight = small_blocks();
  tight.max_blocks = 24;  // input alone needs ~16
  extmem::BlockDevice device(tight);
  try {
    extmem::external_sort_vector(device, data, config);
    FAIL() << "sort in 24 blocks must hit ENOSPC";
  } catch (const extmem::IoError& error) {
    EXPECT_EQ(error.status(), extmem::IoStatus::kNoSpace);
  }
  EXPECT_EQ(device.live_blocks(), 0u);

  extmem::DeviceConfig roomy = small_blocks();
  roomy.max_blocks = 96;  // ~2x data + carry: the footprint bound holds
  extmem::BlockDevice retry_device(roomy);
  EXPECT_EQ(extmem::external_sort_vector(retry_device, data, config),
            expected);
}

struct DistOutcome {
  bool completed = false;
  std::vector<std::int32_t> exchange, tree, gather, sorted;
  std::uint64_t schedule_hash = 0;
};

DistOutcome run_faulty_dist(const dist::DistArray& da,
                            const dist::DistArray& db,
                            const dist::DistArray& unsorted,
                            std::uint64_t seed) {
  fault::FaultPlan plan(fault::FaultConfig{seed, kFaultRate, 250.0});
  dist::NetConfig config;
  config.faults = &plan;
  DistOutcome outcome;
  try {
    outcome.exchange = dist::merge_path_exchange(da, db, config)
                           .merged.gathered();
    outcome.tree = dist::tree_merge(da, db, config).merged.gathered();
    outcome.gather = dist::gather_at_root(da, db, config).merged.gathered();
    outcome.sorted = dist::distributed_sort(unsorted, config)
                         .merged.gathered();
    outcome.completed = true;
  } catch (const dist::NetError&) {
    outcome.completed = false;
  }
  outcome.schedule_hash = plan.schedule_hash();
  return outcome;
}

TEST(FaultSweepDist, LossyNetworkStillMergesExactly) {
  if (!fault::kFaultCompiledIn) GTEST_SKIP() << "MP_FAULT=0 build";
  const auto input = make_merge_input(Dist::kFewDuplicates, 1400, 1100, 77);
  const auto values = make_unsorted_values(1800, 78);
  auto sorted_ref = values;
  std::sort(sorted_ref.begin(), sorted_ref.end());
  const auto merged_ref = test::reference_merge(input.a, input.b);

  std::uint64_t completed = 0;
  for (std::uint64_t seed = 0; seed < kSweepSeeds; ++seed) {
    SCOPED_TRACE(::testing::Message() << "fault seed=" << seed);
    const unsigned ranks = 2 + static_cast<unsigned>(seed % 7);
    const dist::DistArray da = dist::distribute(input.a, ranks);
    const dist::DistArray db = dist::distribute(input.b, ranks);
    const dist::DistArray du = dist::distribute(values, ranks);
    const DistOutcome outcome = run_faulty_dist(da, db, du, seed);
    if (!outcome.completed) continue;  // typed failure: legal, just rare
    ++completed;
    ASSERT_EQ(outcome.exchange, merged_ref) << "merge_path_exchange";
    ASSERT_EQ(outcome.tree, merged_ref) << "tree_merge";
    ASSERT_EQ(outcome.gather, merged_ref) << "gather_at_root";
    ASSERT_EQ(outcome.sorted, sorted_ref) << "distributed_sort";
  }
  // Drops need 16 consecutive losses to fail; at 10%/3 that never happens.
  EXPECT_EQ(completed, kSweepSeeds);
}

TEST(FaultSweepDist, SameSeedReplaysByteIdentically) {
  if (!fault::kFaultCompiledIn) GTEST_SKIP() << "MP_FAULT=0 build";
  const auto input = make_merge_input(Dist::kClustered, 900, 1300, 11);
  const auto values = make_unsorted_values(1000, 12);
  const dist::DistArray da = dist::distribute(input.a, 5);
  const dist::DistArray db = dist::distribute(input.b, 5);
  const dist::DistArray du = dist::distribute(values, 5);
  for (const std::uint64_t seed : {3ull, 19ull, 0xfaceull}) {
    SCOPED_TRACE(::testing::Message() << "fault seed=" << seed);
    const DistOutcome first = run_faulty_dist(da, db, du, seed);
    const DistOutcome second = run_faulty_dist(da, db, du, seed);
    ASSERT_EQ(first.schedule_hash, second.schedule_hash);
    ASSERT_EQ(first.completed, second.completed);
    ASSERT_EQ(first.exchange, second.exchange);
    ASSERT_EQ(first.tree, second.tree);
    ASSERT_EQ(first.gather, second.gather);
    ASSERT_EQ(first.sorted, second.sorted);
  }
}

TEST(FaultSweepDist, SegmentRetryHealsAWindowedPartition) {
  if (!fault::kFaultCompiledIn) GTEST_SKIP() << "MP_FAULT=0 build";
  // A partition that drops a whole segment's fetches but heals: the
  // per-segment retry (safe by Theorem 14's disjointness) completes the
  // merge with the exact fault-free result.
  const auto input = make_merge_input(Dist::kUniform, 1600, 1600, 21);
  const auto reference = test::reference_merge(input.a, input.b);
  const dist::DistArray da = dist::distribute(input.a, 4);
  const dist::DistArray db = dist::distribute(input.b, 4);
  fault::FaultPlan plan;
  // Window wide enough to exhaust max_resend on one fetch (so the segment
  // fails with NetError) but closed by the time the segment retries.
  for (unsigned src = 0; src < 4; ++src)
    plan.partition_link(src, 2, 0, 12);
  dist::NetConfig config;
  config.faults = &plan;
  config.max_resend = 8;
  config.segment_retries = 2;
  const auto result = dist::merge_path_exchange(da, db, config);
  EXPECT_EQ(result.merged.gathered(), reference);
  EXPECT_GT(result.net.resends, 0u);
}

TEST(FaultSweepDist, UnhealedPartitionFailsTypedEverywhere) {
  if (!fault::kFaultCompiledIn) GTEST_SKIP() << "MP_FAULT=0 build";
  const auto input = make_merge_input(Dist::kUniform, 800, 800, 31);
  const auto values = make_unsorted_values(800, 32);
  const dist::DistArray da = dist::distribute(input.a, 4);
  const dist::DistArray db = dist::distribute(input.b, 4);
  const dist::DistArray du = dist::distribute(values, 4);
  const auto forever_drop = [] {
    fault::FaultPlan plan;
    plan.fail_from(0, fault::FaultKind::kDrop);
    return plan;
  };
  dist::NetConfig config;
  config.max_resend = 3;
  config.segment_retries = 1;
  fault::FaultPlan p1 = forever_drop();
  config.faults = &p1;
  EXPECT_THROW(dist::merge_path_exchange(da, db, config), dist::NetError);
  fault::FaultPlan p2 = forever_drop();
  config.faults = &p2;
  EXPECT_THROW(dist::tree_merge(da, db, config), dist::NetError);
  fault::FaultPlan p3 = forever_drop();
  config.faults = &p3;
  EXPECT_THROW(dist::gather_at_root(da, db, config), dist::NetError);
  fault::FaultPlan p4 = forever_drop();
  config.faults = &p4;
  EXPECT_THROW(dist::distributed_sort(du, config), dist::NetError);
}

// ---------------------------------------------------------------------------
// Compute-fault surface: lane failures inside the in-memory ThreadPool path
// (kLaneThrow / kLaneAbandon / kLaneDelay) and the recovery layer that
// re-executes only the failed lanes' disjoint segments (core/recovery.hpp).

struct LaneSweepOutcome {
  std::vector<std::int32_t> merged, sorted;
  std::uint64_t schedule_hash = 0;
  fault::FaultStats fault_stats;
  RecoveryReport merge_report, sort_report;
};

/// A resilient merge and merge sort on a pool armed with a seeded 10%
/// lane-fault schedule. Recovery guarantees completion (retries, then a
/// caller-side sequential fallback), so unlike the extmem/dist sweeps
/// there is no "typed failure" arm — only byte-exact output or a test
/// failure.
LaneSweepOutcome run_faulty_lanes(const MergeInput& input,
                                  const std::vector<std::int32_t>& unsorted,
                                  std::uint64_t seed) {
  ThreadPool pool(3);
  // Short stalls (200 us) keep the sweep fast; the hedger is exercised
  // separately (test_threading) where timing can be controlled.
  fault::FaultPlan plan(fault::FaultConfig{seed, kFaultRate, 250.0, 200.0});
  fault::ScopedInjector injector(pool, plan);
  const Executor exec{&pool, 4};
  LaneSweepOutcome out;
  out.merged.resize(input.a.size() + input.b.size());
  out.merge_report = resilient_parallel_merge(
      input.a.data(), input.a.size(), input.b.data(), input.b.size(),
      out.merged.data(), exec);
  out.sorted = unsorted;
  out.sort_report =
      resilient_parallel_merge_sort(out.sorted.data(), out.sorted.size(), exec);
  out.schedule_hash = plan.schedule_hash();
  out.fault_stats = plan.stats();
  return out;
}

TEST(FaultSweepLanes, RecoveryIsByteExactAcrossSeeds) {
  if (!fault::kFaultCompiledIn) GTEST_SKIP() << "MP_FAULT=0 build";
  const auto input = make_merge_input(Dist::kClustered, 1700, 1300, 0xbee);
  const auto unsorted = make_unsorted_values(2500, 0xbef);
  const auto merged_ref = test::reference_merge(input.a, input.b);
  auto sorted_ref = unsorted;
  std::sort(sorted_ref.begin(), sorted_ref.end());
  std::uint64_t injected_total = 0, retried_total = 0;
  for (std::uint64_t seed = 0; seed < kSweepSeeds; ++seed) {
    SCOPED_TRACE(::testing::Message() << "fault seed=" << seed);
    const LaneSweepOutcome outcome = run_faulty_lanes(input, unsorted, seed);
    injected_total += outcome.fault_stats.injected;
    retried_total += outcome.merge_report.retried_lanes +
                     outcome.sort_report.retried_lanes;
    // The acceptance criterion: despite injected lane crashes, dead
    // workers and stalls, the recovered output is the fault-free result,
    // byte for byte.
    ASSERT_EQ(outcome.merged, merged_ref);
    ASSERT_EQ(outcome.sorted, sorted_ref);
  }
  // The schedules must actually be biting for the sweep to mean anything.
  EXPECT_GT(injected_total, kSweepSeeds);  // >1 fault per seed on average
  EXPECT_GT(retried_total, 0u);
}

TEST(FaultSweepLanes, TryApiCompletesOrReportsTypedOutcomes) {
  if (!fault::kFaultCompiledIn) GTEST_SKIP() << "MP_FAULT=0 build";
  // The raw pool contract under random schedules: the barrier always
  // completes, and every lane is either kOk (task ran exactly once) or a
  // typed injected outcome — never a lost lane, never a deadlock.
  ThreadPool pool(3);
  for (std::uint64_t seed = 0; seed < kSweepSeeds; ++seed) {
    SCOPED_TRACE(::testing::Message() << "fault seed=" << seed);
    fault::FaultPlan plan(fault::FaultConfig{seed, 0.25, 250.0, 100.0});
    fault::ScopedInjector injector(pool, plan);
    std::vector<std::atomic<int>> hits(8);
    const LaneReport report = pool.try_parallel_for_lanes(
        8, [&](unsigned lane) { hits[lane].fetch_add(1); });
    ASSERT_EQ(report.lanes.size(), 8u);
    for (unsigned lane = 0; lane < 8; ++lane) {
      const LaneOutcome& o = report.lanes[lane];
      if (o.status == LaneStatus::kOk) {
        ASSERT_EQ(hits[lane].load(), 1) << "lane " << lane;
        continue;
      }
      ASSERT_EQ(hits[lane].load(), 0) << "lane " << lane;  // fired pre-task
      ASSERT_NE(o.injected, fault::FaultKind::kNone);
      try {
        std::rethrow_exception(LaneReport{{o}, 1, 1, 0}.first_error());
        FAIL() << "failed lane must carry a typed error";
      } catch (const fault::LaneFault&) {
      }
    }
  }
}

TEST(FaultSweepLanes, SameSeedReplaysByteIdentically) {
  if (!fault::kFaultCompiledIn) GTEST_SKIP() << "MP_FAULT=0 build";
  const auto input = make_merge_input(Dist::kFewDuplicates, 1100, 900, 0xace);
  const auto unsorted = make_unsorted_values(1600, 0xacf);
  for (const std::uint64_t seed : {2ull, 23ull, 0x1a7eull}) {
    SCOPED_TRACE(::testing::Message() << "fault seed=" << seed);
    const LaneSweepOutcome first = run_faulty_lanes(input, unsorted, seed);
    const LaneSweepOutcome second = run_faulty_lanes(input, unsorted, seed);
    // Decisions are drawn at fork time on the caller thread (lane order),
    // so the whole schedule — and everything downstream of it — is a pure
    // function of the seed, independent of worker interleaving.
    ASSERT_EQ(first.schedule_hash, second.schedule_hash);
    ASSERT_TRUE(first.fault_stats == second.fault_stats);
    ASSERT_EQ(first.merged, second.merged);
    ASSERT_EQ(first.sorted, second.sorted);
    ASSERT_EQ(first.merge_report.injected_faults,
              second.merge_report.injected_faults);
    ASSERT_EQ(first.merge_report.retried_lanes,
              second.merge_report.retried_lanes);
    ASSERT_EQ(first.merge_report.attempts, second.merge_report.attempts);
    ASSERT_EQ(first.sort_report.injected_faults,
              second.sort_report.injected_faults);
    ASSERT_EQ(first.sort_report.retried_lanes,
              second.sort_report.retried_lanes);
    ASSERT_EQ(first.sort_report.attempts, second.sort_report.attempts);
  }
}

TEST(FaultSweepLanes, TotalLossDegradesToSequentialFallback) {
  if (!fault::kFaultCompiledIn) GTEST_SKIP() << "MP_FAULT=0 build";
  // Rate 1.0: every pooled attempt of every lane draws a fault. Delay
  // draws still complete (stall, then run), but throw/abandon draws can
  // keep a lane failing through every retry — recovery must exhaust its
  // budget and finish the stragglers on the calling thread (which the
  // injector cannot reach), still byte-exact.
  const auto input = make_merge_input(Dist::kUniform, 800, 800, 0xdead);
  const auto merged_ref = test::reference_merge(input.a, input.b);
  ThreadPool pool(3);
  fault::FaultPlan plan(fault::FaultConfig{5, 1.0, 250.0, 100.0});
  fault::ScopedInjector injector(pool, plan);
  const Executor exec{&pool, 4};
  std::vector<std::int32_t> out(input.a.size() + input.b.size());
  RecoveryConfig cfg;
  cfg.retry.max_attempts = 3;  // keep the doomed retries short
  const RecoveryReport report = resilient_parallel_merge(
      input.a.data(), input.a.size(), input.b.data(), input.b.size(),
      out.data(), exec, std::less<>{}, cfg);
  EXPECT_EQ(out, merged_ref);
  EXPECT_TRUE(report.degraded());
  EXPECT_GE(report.fallback_lanes, 1u);
  EXPECT_GE(report.attempts, 3u);
}

TEST(FaultSweepLanes, GenuineExceptionsAreNotRetried) {
  if (!fault::kFaultCompiledIn) GTEST_SKIP() << "MP_FAULT=0 build";
  // A real bug in the task (not an injected fault) must surface on the
  // first attempt: retrying user errors would mask them and burn time.
  ThreadPool pool(3);
  const Executor exec{&pool, 4};
  std::atomic<int> runs{0};
  try {
    run_lanes_with_recovery(exec.resolve_pool(), 4, [&](unsigned lane) {
      runs.fetch_add(1);
      if (lane == 2) throw std::logic_error("task bug");
    });
    FAIL() << "the task's own exception must propagate";
  } catch (const std::logic_error&) {
  }
  EXPECT_LE(runs.load(), 4);  // one attempt, no retry of the buggy lane
}

TEST(FaultGate, CompiledOutInjectorsAreInert) {
  if (fault::kFaultCompiledIn)
    GTEST_SKIP() << "covered by the armed tests above";
  // MP_FAULT=0 build: a hot plan attached to both targets must change
  // nothing — same results, zero decisions consumed.
  fault::FaultPlan plan(fault::FaultConfig{1, 1.0, 250.0});
  plan.fail_from(0, fault::FaultKind::kMedia);

  const auto data = make_records(600, 0x0ff);
  auto expected = data;
  std::stable_sort(expected.begin(), expected.end());
  extmem::BlockDevice device(small_blocks());
  fault::ScopedInjector device_injector(device, plan);
  extmem::ExternalSortConfig config;
  config.memory_elems = 256;
  config.exec.threads = 2;
  EXPECT_EQ(extmem::external_sort_vector(device, data, config), expected);

  const auto input = make_merge_input(Dist::kUniform, 500, 500, 41);
  dist::NetConfig net_config;
  net_config.faults = &plan;
  const auto result = dist::merge_path_exchange(
      dist::distribute(input.a, 4), dist::distribute(input.b, 4), net_config);
  EXPECT_EQ(result.merged.gathered(), test::reference_merge(input.a, input.b));

  // Compute-fault surface: the pool with a hot plan attached must run the
  // plain and resilient entry points untouched — no decisions drawn, no
  // faults, no retries, no fallback.
  ThreadPool pool(2);
  fault::ScopedInjector pool_injector(pool, plan);
  const Executor exec{&pool, 3};
  std::vector<std::int32_t> merged(input.a.size() + input.b.size());
  const RecoveryReport recovery = resilient_parallel_merge(
      input.a.data(), input.a.size(), input.b.data(), input.b.size(),
      merged.data(), exec);
  EXPECT_EQ(merged, test::reference_merge(input.a, input.b));
  EXPECT_EQ(recovery.injected_faults, 0u);
  EXPECT_EQ(recovery.retried_lanes, 0u);
  EXPECT_EQ(recovery.fallback_lanes, 0u);
  const LaneReport lane_report =
      pool.try_parallel_for_lanes(5, [](unsigned) {});
  EXPECT_TRUE(lane_report.all_ok());
  EXPECT_EQ(lane_report.injected_faults, 0u);

  EXPECT_EQ(plan.stats().decisions, 0u);
  EXPECT_EQ(result.net.faults_injected, 0u);
}

}  // namespace
}  // namespace mp
