// Oversubscription and pool-lifecycle stress.
//
// Correctness must not depend on lanes <= cores: the repo's contract is
// that `threads` is the paper's p, a partitioning parameter, while the
// pool's workers are an execution detail. These tests run lane counts far
// above the host's core count, hammer rapid back-to-back jobs (the window
// for the stale-worker recycling race fixed in threading.cpp — a worker
// from job N claiming lanes of job N+1 through the reset counter), and
// pin down the MP_CHECK rejection of nested fork-join.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "core/mergepath.hpp"
#include "../test_support.hpp"
#include "util/data_gen.hpp"
#include "util/rng.hpp"
#include "util/tasksched.hpp"
#include "util/threading.hpp"

namespace mp {
namespace {

TEST(Oversubscription, ManyLanesOnFewWorkersMergeCorrectly) {
  ThreadPool pool(3);  // lanes below run 11x-43x the worker count
  Xoshiro256 rng(0x0ec5ULL);
  for (const unsigned lanes : {32u, 64u, 128u}) {
    for (int iter = 0; iter < 6; ++iter) {
      const Dist dist = kAllDists[rng.bounded(std::size(kAllDists))];
      const std::size_t m = rng.bounded(20000);
      const std::size_t n = rng.bounded(20000);
      const std::uint64_t seed = rng();
      SCOPED_TRACE(::testing::Message()
                   << to_string(dist) << " m=" << m << " n=" << n
                   << " lanes=" << lanes << " seed=" << seed);
      const auto input = make_merge_input(dist, m, n, seed);
      const auto expected = test::reference_merge(input.a, input.b);
      std::vector<std::int32_t> out(m + n);
      parallel_merge(input.a.data(), m, input.b.data(), n, out.data(),
                     Executor{&pool, lanes});
      ASSERT_EQ(out, expected);
    }
  }
}

TEST(Oversubscription, SharedPoolAcceptsHugeLaneCounts) {
  const auto input = make_merge_input(Dist::kClustered, 50000, 50000, 0xabba);
  const auto expected = test::reference_merge(input.a, input.b);
  std::vector<std::int32_t> out(input.a.size() + input.b.size());
  parallel_merge(input.a.data(), input.a.size(), input.b.data(),
                 input.b.size(), out.data(), Executor{nullptr, 256});
  ASSERT_EQ(out, expected);
}

// Rapid back-to-back tiny jobs maximise the chance that a worker woken for
// job N arrives only after job N's lanes are all claimed — exactly the
// state from which the pre-fix pool could leak that worker into job N+1
// (dangling task pointer, double-claimed lane). TSan + this loop is the
// mechanical regression test for that fix; the lane-coverage assertions
// catch the double-claim symptom even without TSan.
TEST(Oversubscription, RapidBackToBackJobsNeverLeakLanesAcrossJobs) {
  ThreadPool pool(4);
  std::vector<std::atomic<std::uint32_t>> hits(8);
  for (std::uint32_t job = 0; job < 4000; ++job) {
    const unsigned lanes = 2 + job % 7;
    for (unsigned l = 0; l < lanes; ++l)
      hits[l].store(0, std::memory_order_relaxed);
    pool.parallel_for_lanes(lanes, [&](unsigned lane) {
      hits[lane].fetch_add(1, std::memory_order_relaxed);
    });
    for (unsigned l = 0; l < lanes; ++l)
      ASSERT_EQ(hits[l].load(std::memory_order_relaxed), 1u)
          << "job " << job << " lane " << l
          << " ran the wrong number of times";
  }
}

TEST(Oversubscription, AlternatingLaneCountsReusePoolCleanly) {
  ThreadPool pool(2);
  Xoshiro256 rng(0xa17eULL);
  for (int iter = 0; iter < 120; ++iter) {
    const unsigned lanes = static_cast<unsigned>(1 + rng.bounded(96));
    std::atomic<unsigned> ran{0};
    pool.parallel_for_lanes(lanes, [&](unsigned) {
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(ran.load(), lanes) << "iter " << iter;
  }
}

#if defined(__SANITIZE_THREAD__)
#define MP_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MP_TSAN_ENABLED 1
#endif
#endif

// threading.hpp: "Nested invocation from inside a lane is rejected with
// MP_CHECK." MP_CHECK aborts, so this is a death test. It documents the
// *ThreadPool* contract only — the work-stealing TaskScheduler supports
// nesting natively (positive test below, full stress in
// test_property_workstealing.cpp); use that when you need fork-join
// inside a lane. The nested call must request >= 2 lanes on a pool with
// workers — the single-lane / zero-worker path legitimately runs inline
// instead.
TEST(Oversubscription, NestedForkJoinIsRejected) {
#ifdef MP_TSAN_ENABLED
  GTEST_SKIP() << "death tests fork; unreliable under TSan";
#else
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(
      {
        ThreadPool pool(2);
        pool.parallel_for_lanes(3, [&](unsigned lane) {
          if (lane == 0)
            pool.parallel_for_lanes(2, [](unsigned) {});
        });
      },
      "check failed");
#endif
}

// What PR 1 could only forbid, the work-stealing scheduler makes legal:
// the same shape — fork-join inside a parallel region — composed through
// TaskScheduler::par_do instead of a nested pool job. A lane that needs
// to subdivide further calls par_merge_recursive (or par_do directly)
// from inside sched.run(); deeper stress lives in
// test_property_workstealing.cpp.
TEST(Oversubscription, NestedForkJoinWorksOnTaskScheduler) {
  TaskScheduler sched(2);
  const auto input = make_merge_input(Dist::kInterleaved, 30000, 30000, 314);
  const auto expected = test::reference_merge(input.a, input.b);

  std::vector<std::int32_t> out(input.a.size() + input.b.size());
  std::atomic<unsigned> inner_jobs{0};
  sched.run([&] {
    // Nested fork-join: par_do at depth 1 forks two par_merge_recursive
    // calls (each itself a par_do tree over the shared deques).
    const std::size_t half_a = input.a.size() / 2;
    // Split point must respect key order across the seam: merge A's low
    // half with the B-prefix of everything below A[half_a], rest with rest.
    const auto b_split = static_cast<std::size_t>(
        std::lower_bound(input.b.begin(), input.b.end(), input.a[half_a]) -
        input.b.begin());
    RecursiveConfig cfg;
    cfg.scheduler = &sched;
    cfg.merge_grain = 1024;
    TaskScheduler::par_do(
        [&] {
          par_merge_recursive(input.a.data(), half_a, input.b.data(), b_split,
                              out.data(), cfg);
          inner_jobs.fetch_add(1, std::memory_order_relaxed);
        },
        [&] {
          par_merge_recursive(input.a.data() + half_a,
                              input.a.size() - half_a,
                              input.b.data() + b_split,
                              input.b.size() - b_split,
                              out.data() + half_a + b_split, cfg);
          inner_jobs.fetch_add(1, std::memory_order_relaxed);
        });
  });
  EXPECT_EQ(inner_jobs.load(), 2u);
  ASSERT_EQ(out, expected);
}

}  // namespace
}  // namespace mp
