// Crash/restart property sweeps for the S26 pipeline (see docs/TESTING.md
// and docs/PIPELINE.md).
//
// The contract under test: kill the pipeline at ANY step — every scripted
// step index a clean run executes, and rate-driven schedules across many
// seeds and geometries — then resume from the on-device manifest, and the
// final output is byte-exact against the fault-free run, no device blocks
// leak (orphans below the checkpoint watermark are reclaimed), and the
// cumulative work counters match the clean run's (completed units are
// never re-executed). A torn newest manifest slot falls back to the
// previous checkpoint and still completes byte-exact; both slots corrupt
// is the typed ManifestError, never wrong bytes.
//
// Seed counts drop under sanitizers (10-20x slowdown); every case logs its
// parameters via SCOPED_TRACE so a CI failure replays with --gtest_filter.

#include "pipeline/pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "extmem/run_file.hpp"
#include "util/rng.hpp"

#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MP_TEST_SANITIZED 1
#endif
#endif
#if !defined(MP_TEST_SANITIZED) && \
    (defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__))
#define MP_TEST_SANITIZED 1
#endif
#ifndef MP_TEST_SANITIZED
#define MP_TEST_SANITIZED 0
#endif

namespace mp::pipeline {
namespace {

#if MP_TEST_SANITIZED
constexpr std::uint64_t kSweepSeeds = 24;
#else
constexpr std::uint64_t kSweepSeeds = 200;
#endif

extmem::DeviceConfig tiny_blocks() {
  extmem::DeviceConfig config;
  config.block_bytes = 256;  // 64 int32 / 32 KeyId per block
  return config;
}

template <typename T>
extmem::RunHandle write_input(extmem::BlockDevice& device,
                              const std::vector<T>& values) {
  extmem::RunWriter<T> writer(device);
  writer.append(values.data(), values.size());
  return writer.finish();
}

template <typename T>
std::vector<T> read_run(extmem::BlockDevice& device, extmem::RunHandle run) {
  extmem::RunReader<T> reader(device, run);
  std::vector<T> out;
  out.reserve(static_cast<std::size_t>(run.element_count));
  while (!reader.empty()) out.push_back(reader.next());
  return out;
}

/// Stability probe: sort by key only, ids record input order. Byte-exact
/// agreement with std::stable_sort across a crash loop proves crashes
/// never reorder equal keys.
struct KeyId {
  std::int32_t key;
  std::int32_t id;
  friend bool operator==(const KeyId&, const KeyId&) = default;
};
struct KeyLess {
  bool operator()(const KeyId& a, const KeyId& b) const {
    return a.key < b.key;
  }
};

std::vector<KeyId> make_records(std::size_t n, std::uint64_t seed) {
  // Tiny key universe => heavy duplication => stability is load-bearing.
  Xoshiro256 rng(seed);
  std::vector<KeyId> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = KeyId{static_cast<std::int32_t>(rng.bounded(48)),
                   static_cast<std::int32_t>(i)};
  return out;
}

/// Steady-state footprint after completion: input run + output run + the
/// two manifest slots. Anything above that is a leak.
std::uint64_t expected_live_blocks(const extmem::BlockDevice& device,
                                   std::uint64_t n, std::uint32_t elem_bytes,
                                   const PipelineConfig& cfg) {
  const std::uint64_t epb = device.config().block_bytes / elem_bytes;
  const std::uint64_t run_blocks = (n + epb - 1) / epb;
  const std::uint64_t slot_blocks = ManifestStore::slot_blocks_for(
      device, worst_case_manifest_bytes(cfg.shards, n, cfg.memory_elems));
  return 2 * run_blocks + 2 * slot_blocks;
}

struct ChaosOutcome {
  PipelineReport report;
  unsigned incarnations = 1;  // crash count + 1
  std::uint64_t manifest_block = 0;
};

/// Drives start() + the kill/resume loop to completion. Every CrashError
/// is answered with a resume from the on-device manifest; any other
/// exception propagates (an abort or a wrong-typed error fails the test).
template <typename T, typename Comp = std::less<>>
ChaosOutcome run_to_completion(extmem::BlockDevice& device,
                               extmem::RunHandle input, std::uint64_t n,
                               const PipelineConfig& cfg, Comp comp = {}) {
  auto pipe = Pipeline<T, Comp>::start(device, input, cfg, comp);
  ChaosOutcome out;
  out.manifest_block = pipe.manifest_block();
  for (;;) {
    try {
      out.report = pipe.run();
      return out;
    } catch (const CrashError&) {
      ++out.incarnations;
      EXPECT_LT(out.incarnations, 100000u) << "crash loop diverged";
      if (out.incarnations >= 100000u) throw;
      pipe = Pipeline<T, Comp>::resume(device, out.manifest_block, n, cfg,
                                       comp);
    }
  }
}

PipelineConfig sweep_config() {
  PipelineConfig cfg;
  cfg.memory_elems = 160;
  cfg.shards = 3;
  cfg.segment_blocks = 2;
  return cfg;
}

/// Kill at EVERY step a clean run executes — not a sample. Each kill k
/// runs the full crash/resume loop to completion and must reproduce the
/// clean run's bytes, its exact work counters (no redone form / merge /
/// exchange units, no extra checkpoints), and its block footprint.
TEST(PipelineCrashSweep, KillAtEveryStepResumesByteExact) {
  if constexpr (!fault::kFaultCompiledIn)
    GTEST_SKIP() << "MP_FAULT=0 build";
#if MP_TEST_SANITIZED
  const std::size_t n = 450;
#else
  const std::size_t n = 800;
#endif
  const auto values = make_records(n, 0xabcd);
  std::vector<KeyId> expected = values;
  std::stable_sort(expected.begin(), expected.end(), KeyLess{});
  const PipelineConfig cfg = sweep_config();

  // Clean reference: counters and the step count that bounds the sweep.
  extmem::BlockDevice clean_device(tiny_blocks());
  const extmem::RunHandle clean_input = write_input(clean_device, values);
  const ChaosOutcome clean = run_to_completion<KeyId, KeyLess>(
      clean_device, clean_input, n, cfg);
  ASSERT_EQ(clean.incarnations, 1u);
  ASSERT_EQ(read_run<KeyId>(clean_device, clean.report.output), expected);
  ASSERT_GT(clean.report.steps, 20u);  // the sweep is actually a sweep

  for (std::uint64_t kill = 0; kill < clean.report.steps; ++kill) {
    SCOPED_TRACE(::testing::Message() << "kill step=" << kill);
    extmem::BlockDevice device(tiny_blocks());
    const extmem::RunHandle input = write_input(device, values);
    fault::FaultPlan plan;  // inert except the script
    plan.fail_op(kill, fault::FaultKind::kCrash);
    PipelineConfig killed = cfg;
    killed.crash_plan = &plan;
    const ChaosOutcome outcome =
        run_to_completion<KeyId, KeyLess>(device, input, n, killed);
    ASSERT_EQ(outcome.incarnations, 2u);  // exactly one scripted death
    ASSERT_EQ(outcome.report.resumes, 1u);
    ASSERT_EQ(read_run<KeyId>(device, outcome.report.output), expected);
    // No-redo proof at every kill point: cumulative manifest counters of
    // the killed run equal the clean run's exactly.
    ASSERT_EQ(outcome.report.runs_formed, clean.report.runs_formed);
    ASSERT_EQ(outcome.report.segments_merged, clean.report.segments_merged);
    ASSERT_EQ(outcome.report.ranks_exchanged,
              clean.report.ranks_exchanged);
    ASSERT_EQ(outcome.report.checkpoints, clean.report.checkpoints);
    ASSERT_EQ(device.live_blocks(), expected_live_blocks(device, n, 8, cfg));
  }
}

/// Randomized geometries × rate-driven crash schedules. Each seed draws a
/// shape (n, shards, run size, segment size, buffering mode, checkpoint
/// cadence) and a crash rate up to 1.0, runs clean and crash-riddled
/// pipelines, and demands byte-exact agreement, counter equality, and a
/// leak-free device.
TEST(PipelineCrashSweep, RandomGeometryCrashLoopsAcrossSeeds) {
  if constexpr (!fault::kFaultCompiledIn)
    GTEST_SKIP() << "MP_FAULT=0 build";
  std::uint64_t crashes_total = 0;
  for (std::uint64_t seed = 0; seed < kSweepSeeds; ++seed) {
    Xoshiro256 rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    const std::size_t n = 1 + static_cast<std::size_t>(rng.bounded(700));
    PipelineConfig cfg;
    cfg.shards = 1 + static_cast<unsigned>(rng.bounded(5));
    cfg.memory_elems = 48 + rng.bounded(300);
    cfg.segment_blocks = 1 + rng.bounded(4);
    cfg.checkpoint_every_runs = 1 + rng.bounded(3);
    cfg.double_buffer = rng.bounded(2) == 0;
    const double rate = 0.25 + 0.25 * static_cast<double>(rng.bounded(4));
    SCOPED_TRACE(::testing::Message()
                 << "seed=" << seed << " n=" << n << " shards=" << cfg.shards
                 << " memory_elems=" << cfg.memory_elems
                 << " segment_blocks=" << cfg.segment_blocks
                 << " every=" << cfg.checkpoint_every_runs
                 << " double_buffer=" << cfg.double_buffer
                 << " rate=" << rate);
    const auto values = make_records(n, seed ^ 0x5eedULL);
    std::vector<KeyId> expected = values;
    std::stable_sort(expected.begin(), expected.end(), KeyLess{});

    extmem::BlockDevice clean_device(tiny_blocks());
    const extmem::RunHandle clean_input = write_input(clean_device, values);
    const ChaosOutcome clean = run_to_completion<KeyId, KeyLess>(
        clean_device, clean_input, n, cfg);
    ASSERT_EQ(read_run<KeyId>(clean_device, clean.report.output), expected);

    extmem::BlockDevice device(tiny_blocks());
    const extmem::RunHandle input = write_input(device, values);
    fault::FaultConfig fc;
    fc.seed = seed ^ 0xc0ffeeULL;
    fc.rate = rate;
    fault::FaultPlan plan(fc);
    PipelineConfig crashy = cfg;
    crashy.crash_plan = &plan;
    const ChaosOutcome outcome =
        run_to_completion<KeyId, KeyLess>(device, input, n, crashy);
    crashes_total += outcome.incarnations - 1;
    ASSERT_EQ(read_run<KeyId>(device, outcome.report.output), expected);
    ASSERT_EQ(outcome.report.resumes, outcome.incarnations - 1);
    ASSERT_EQ(outcome.report.runs_formed, clean.report.runs_formed);
    ASSERT_EQ(outcome.report.segments_merged, clean.report.segments_merged);
    ASSERT_EQ(outcome.report.ranks_exchanged,
              clean.report.ranks_exchanged);
    ASSERT_EQ(outcome.report.checkpoints, clean.report.checkpoints);
    ASSERT_EQ(device.live_blocks(), expected_live_blocks(device, n, 8, cfg));
  }
  // The sweep must actually be exercising the crash path, heavily.
  EXPECT_GT(crashes_total, kSweepSeeds);
}

/// A torn newest manifest slot is survivable: resume falls back to the
/// previous checkpoint, re-does at most the units since it, and still
/// finishes byte-exact and leak-free. Counters may legitimately exceed the
/// clean run's here — the point of the fallback is bounded redo, not zero
/// redo.
TEST(PipelineCrashSweep, TornNewestSlotFallsBackAndCompletesByteExact) {
  if constexpr (!fault::kFaultCompiledIn)
    GTEST_SKIP() << "MP_FAULT=0 build";
  const std::size_t n = 700;
  const PipelineConfig base_cfg = sweep_config();
  for (const std::uint64_t kill : {7u, 13u, 22u, 31u}) {
    SCOPED_TRACE(::testing::Message() << "kill step=" << kill);
    const auto values = make_records(n, kill * 31 + 5);
    std::vector<KeyId> expected = values;
    std::stable_sort(expected.begin(), expected.end(), KeyLess{});
    extmem::BlockDevice device(tiny_blocks());
    const extmem::RunHandle input = write_input(device, values);
    fault::FaultPlan plan;
    plan.fail_op(kill, fault::FaultKind::kCrash);
    PipelineConfig cfg = base_cfg;
    cfg.crash_plan = &plan;
    auto pipe = Pipeline<KeyId, KeyLess>::start(device, input, cfg, {});
    const std::uint64_t base = pipe.manifest_block();
    ASSERT_THROW(pipe.run(), CrashError);

    // The torn write: the newest slot (seq % 2) dies with the process.
    ManifestStore store = ManifestStore::attach(
        device, base,
        worst_case_manifest_bytes(cfg.shards, n, cfg.memory_elems));
    const Manifest at_crash = store.load();
    ASSERT_GE(at_crash.seq, 2u) << "kill too early for a fallback slot";
    store.corrupt_slot(static_cast<unsigned>(at_crash.seq % 2));

    auto resumed = Pipeline<KeyId, KeyLess>::resume(device, base, n, cfg);
    const PipelineReport report = resumed.run();
    EXPECT_EQ(read_run<KeyId>(device, report.output), expected);
    EXPECT_EQ(report.resumes, 1u);
    EXPECT_EQ(device.live_blocks(), expected_live_blocks(device, n, 8, cfg));
  }
}

/// Both slots corrupt at a random crash point, across seeds: always the
/// typed ManifestError (full restart is the documented recovery), never a
/// crash, never wrong bytes from a half-read manifest.
TEST(PipelineCrashSweep, BothSlotsCorruptIsAlwaysTypedErrorAcrossSeeds) {
  if constexpr (!fault::kFaultCompiledIn)
    GTEST_SKIP() << "MP_FAULT=0 build";
  const std::size_t n = 500;
  const PipelineConfig base_cfg = sweep_config();
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    Xoshiro256 rng(seed + 101);
    const std::uint64_t kill = rng.bounded(30);
    const auto values = make_records(n, seed);
    extmem::BlockDevice device(tiny_blocks());
    const extmem::RunHandle input = write_input(device, values);
    fault::FaultPlan plan;
    plan.fail_op(kill, fault::FaultKind::kCrash);
    PipelineConfig cfg = base_cfg;
    cfg.crash_plan = &plan;
    auto pipe = Pipeline<KeyId, KeyLess>::start(device, input, cfg, {});
    const std::uint64_t base = pipe.manifest_block();
    ASSERT_THROW(pipe.run(), CrashError);
    ManifestStore store = ManifestStore::attach(
        device, base,
        worst_case_manifest_bytes(cfg.shards, n, cfg.memory_elems));
    store.corrupt_slot(0);
    store.corrupt_slot(1);
    EXPECT_THROW((Pipeline<KeyId, KeyLess>::resume(device, base, n, cfg)),
                 ManifestError);
  }
}

}  // namespace
}  // namespace mp::pipeline
