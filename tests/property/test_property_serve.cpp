// Serving-layer property sweeps (see docs/TESTING.md).
//
// Three contracts, each swept over seeds:
//  (a) Cross-request batching is invisible in the results: a coalesced
//      segmented batch produces byte-exact the output of sorting every
//      request individually. Payload stability is proven with encoded
//      64-bit keys ((key << 32) | unique_id): the low halves ride along
//      untouched, so byte-equality catches any payload rewrite, not just
//      misordering.
//  (b) Same seed + same fault plan replays identically: the plan's
//      schedule_hash, every per-request outcome, and every result byte.
//  (c) Rate-1.0 lane faults exhaust the retry budget and degrade batches
//      to the sequential caller fallback — with every request still
//      answered, correctly. The server never drops work and never dies.
//
// Seed counts drop under sanitizers (10-20x slowdown); every case logs
// its seed via SCOPED_TRACE so a CI failure replays with --gtest_filter.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "serve/serve.hpp"
#include "util/rng.hpp"
#include "util/threading.hpp"

#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define MP_TEST_SANITIZED 1
#endif
#endif
#if !defined(MP_TEST_SANITIZED) && \
    (defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__))
#define MP_TEST_SANITIZED 1
#endif
#ifndef MP_TEST_SANITIZED
#define MP_TEST_SANITIZED 0
#endif

namespace mp {
namespace {

using namespace mp::serve;

#if MP_TEST_SANITIZED
constexpr std::uint64_t kSweepSeeds = 24;
#else
constexpr std::uint64_t kSweepSeeds = 200;
#endif

/// Encoded stability payload: high half orders (small key universe =>
/// heavy duplication at the key level), low half is a globally unique id
/// the sort must carry along untouched.
std::int64_t encode(std::uint64_t key, std::uint64_t id) {
  return static_cast<std::int64_t>((key << 32) | (id & 0xffffffffu));
}

// ---------------------------------------------------------------------------
// (a) Batched execution is byte-exact vs sorting each request alone.

TEST(ServeProperty, BatchedExecutionByteExactAndPayloadStable) {
  for (std::uint64_t seed = 0; seed < kSweepSeeds; ++seed) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    Xoshiro256 rng(seed * 0x9e3779b97f4a7c15ull + 1);
    ThreadPool pool(2);
    ServerConfig cfg;
    cfg.manual_pump = true;
    cfg.exec = Executor{&pool, 3};
    cfg.solo_threshold = 4096;
    cfg.max_batch_requests = 8;  // several batches per sweep
    Server server(cfg);

    constexpr std::size_t kRequests = 24;
    std::vector<std::vector<std::int64_t>> want64(kRequests);
    std::vector<std::vector<std::int32_t>> want32(kRequests);
    std::vector<Response> responses(kRequests);
    std::vector<bool> answered(kRequests, false);
    std::uint64_t next_id = 0;

    for (std::size_t i = 0; i < kRequests; ++i) {
      // Fuzzed skewed sizes, including empty payloads.
      const std::size_t n = static_cast<std::size_t>(
          rng.bounded(8) == 0 ? rng.bounded(4)
                              : rng.bounded(2048));
      Request req;
      req.sequence = i;
      const std::uint64_t flavor = rng.bounded(8);
      if (flavor == 0) {
        // A merge in the mix: never coalesced, must still be exact.
        req.kind = RequestKind::kMerge;
        req.width = KeyWidth::k64;
        req.keys64.resize(n / 2);
        req.other64.resize(n - n / 2);
        for (auto& v : req.keys64) v = encode(rng.bounded(64), next_id++);
        for (auto& v : req.other64) v = encode(rng.bounded(64), next_id++);
        std::sort(req.keys64.begin(), req.keys64.end());
        std::sort(req.other64.begin(), req.other64.end());
        want64[i].resize(n);
        std::merge(req.keys64.begin(), req.keys64.end(),
                   req.other64.begin(), req.other64.end(),
                   want64[i].begin());
      } else if (flavor <= 2) {
        // 32-bit sorts interleave so width segregation is exercised.
        req.width = KeyWidth::k32;
        req.keys32.resize(n);
        for (auto& v : req.keys32)
          v = static_cast<std::int32_t>(rng.bounded(64));
        want32[i] = req.keys32;
        std::sort(want32[i].begin(), want32[i].end());
      } else {
        req.width = KeyWidth::k64;
        req.keys64.resize(n);
        for (auto& v : req.keys64) v = encode(rng.bounded(64), next_id++);
        want64[i] = req.keys64;
        std::sort(want64[i].begin(), want64[i].end());
      }
      const auto res = server.submit(std::move(req), [&, i](Response&& r) {
        responses[i] = std::move(r);
        answered[i] = true;
      });
      ASSERT_TRUE(res.accepted());
    }
    server.pump();

    std::uint64_t batched = 0;
    for (std::size_t i = 0; i < kRequests; ++i) {
      SCOPED_TRACE(::testing::Message() << "request=" << i);
      ASSERT_TRUE(answered[i]);
      ASSERT_TRUE(responses[i].ok());
      batched += responses[i].batched;
      // Byte-exact vs the individually sorted/merged reference — the low
      // id halves prove the payload was carried, not reconstructed.
      EXPECT_EQ(responses[i].keys64, want64[i]);
      EXPECT_EQ(responses[i].keys32, want32[i]);
    }
    EXPECT_GT(batched, 1u);  // coalescing actually happened
  }
}

// ---------------------------------------------------------------------------
// (b) Replay: same seed + same fault plan => identical schedule_hash and
// identical per-request outcomes (and bytes).

struct ReplayRecord {
  std::uint64_t sequence = 0;
  Outcome outcome = Outcome::kOk;
  bool degraded = false;
  bool batched = false;
  std::uint64_t batch = 0;
  std::vector<std::int32_t> result;

  bool operator==(const ReplayRecord&) const = default;
};

std::pair<std::uint64_t, std::vector<ReplayRecord>> replay_run(
    std::uint64_t seed) {
  ThreadPool pool(3);
  fault::FaultPlan plan(
      fault::FaultConfig{seed, /*rate=*/0.10, /*latency_us=*/250.0,
                         /*lane_delay_us=*/50.0});
  fault::ScopedInjector injector(pool, plan);
  ServerConfig cfg;
  cfg.manual_pump = true;
  cfg.exec = Executor{&pool, 4};
  cfg.solo_threshold = 1024;
  cfg.max_batch_requests = 4;
  Server server(cfg);

  Xoshiro256 rng(seed ^ 0xdeadbeefcafef00dull);
  constexpr std::size_t kRequests = 16;
  std::vector<ReplayRecord> records;
  records.reserve(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    Request req;
    req.sequence = i;
    req.keys32.resize(rng.bounded(3000));  // some solo (>= 1024), some small
    for (auto& v : req.keys32) v = static_cast<std::int32_t>(rng());
    const auto res = server.submit(std::move(req), [&](Response&& r) {
      records.push_back(ReplayRecord{r.sequence, r.outcome, r.degraded,
                                     r.batched, r.batch,
                                     std::move(r.keys32)});
    });
    EXPECT_TRUE(res.accepted());
  }
  server.pump();
  return {plan.schedule_hash(), std::move(records)};
}

TEST(ServeProperty, SameSeedAndFaultPlanReplayIdentically) {
  for (std::uint64_t seed = 0; seed < kSweepSeeds; ++seed) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    const auto [hash1, records1] = replay_run(seed);
    const auto [hash2, records2] = replay_run(seed);
    EXPECT_EQ(hash1, hash2);
    ASSERT_EQ(records1.size(), records2.size());
    EXPECT_TRUE(records1 == records2);
    for (const ReplayRecord& rec : records1) {
      EXPECT_EQ(rec.outcome, Outcome::kOk);
      EXPECT_TRUE(std::is_sorted(rec.result.begin(), rec.result.end()));
    }
  }
}

// ---------------------------------------------------------------------------
// (c) Rate-1.0 lane faults: batches degrade to the sequential fallback,
// every request is still answered with the correct result.

TEST(ServeProperty, RateOneFaultsDegradeButAnswerEverything) {
  std::uint64_t degraded_responses = 0;
  std::uint64_t injected_runs = 0;
  for (std::uint64_t seed = 0; seed < kSweepSeeds; ++seed) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    ThreadPool pool(3);
    fault::FaultPlan plan(
        fault::FaultConfig{seed + 1, /*rate=*/1.0, /*latency_us=*/250.0,
                           /*lane_delay_us=*/50.0});
    fault::ScopedInjector injector(pool, plan);
    ServerConfig cfg;
    cfg.manual_pump = true;
    cfg.exec = Executor{&pool, 4};
    cfg.solo_threshold = 512;
    cfg.max_batch_requests = 8;
    Server server(cfg);

    Xoshiro256 rng(seed * 31 + 7);
    std::size_t submitted = 0;
    std::size_t answered = 0;
    std::size_t correct = 0;
    const auto done = [&](Response&& r) {
      ++answered;
      if (!r.ok()) return;
      degraded_responses += r.degraded;
      const bool sorted =
          std::is_sorted(r.keys32.begin(), r.keys32.end()) &&
          std::is_sorted(r.keys64.begin(), r.keys64.end());
      correct += sorted;
    };

    // Ten coalescable small sorts...
    for (int i = 0; i < 10; ++i) {
      Request req;
      req.keys32.resize(64 + rng.bounded(384));
      for (auto& v : req.keys32) v = static_cast<std::int32_t>(rng());
      ASSERT_TRUE(server.submit(std::move(req), done).accepted());
      ++submitted;
    }
    // ...one solo parallel sort...
    {
      Request req;
      req.keys32.resize(4096);
      for (auto& v : req.keys32) v = static_cast<std::int32_t>(rng());
      ASSERT_TRUE(server.submit(std::move(req), done).accepted());
      ++submitted;
    }
    // ...and one merge large enough for parallel pulls (the
    // StreamMerger degrade path).
    {
      Request req;
      req.kind = RequestKind::kMerge;
      req.keys32.resize(40000);
      req.other32.resize(40000);
      for (auto& v : req.keys32) v = static_cast<std::int32_t>(rng());
      for (auto& v : req.other32) v = static_cast<std::int32_t>(rng());
      std::sort(req.keys32.begin(), req.keys32.end());
      std::sort(req.other32.begin(), req.other32.end());
      ASSERT_TRUE(server.submit(std::move(req), done).accepted());
      ++submitted;
    }

    server.pump();
    // The conservation law under total fault pressure: nothing dropped.
    ASSERT_EQ(answered, submitted);
    ASSERT_EQ(correct, submitted);
    injected_runs += plan.stats().injected > 0 ? 1 : 0;
  }
  if (fault::kFaultCompiledIn) {
    // Rate 1.0 injects on every pool job; across the sweep the retry
    // budget must have been exhausted somewhere (delay-only schedules
    // can survive a single batch, not the whole sweep).
    EXPECT_EQ(injected_runs, kSweepSeeds);
    EXPECT_GT(degraded_responses, 0u);
  } else {
    EXPECT_EQ(injected_runs, 0u);
  }
}

}  // namespace
}  // namespace mp
