// True-stability property tests.
//
// The int32 fuzz suite proves value-level agreement with std::merge, but
// equal int32 keys are indistinguishable, so an implementation that
// reorders ties would still pass. Here every element carries a payload
// encoding (origin array, original index); comparison sees only the key,
// and the assertions compare payloads exactly against the stable reference
// (std::merge / std::stable_sort). Duplicate-heavy Dist shapes (kAllEqual,
// kFewDuplicates) are the interesting rows: they maximise the number of
// ties crossing lane boundaries.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/mergepath.hpp"
#include "core/set_ops.hpp"
#include "core/stream_merger.hpp"
#include "../test_support.hpp"
#include "extmem/block_device.hpp"
#include "extmem/external_sort.hpp"
#include "util/data_gen.hpp"
#include "util/rng.hpp"

namespace mp {
namespace {

// Wraps sorted int32 keys as KeyedRecords whose payload encodes
// (origin << 28) | index — the same scheme as make_keyed_input, applied to
// the adversarial Dist generators.
std::vector<KeyedRecord> tag(const std::vector<std::int32_t>& keys,
                             std::uint32_t origin) {
  std::vector<KeyedRecord> out(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i)
    out[i] = KeyedRecord{keys[i],
                         (origin << 28) | static_cast<std::uint32_t>(i)};
  return out;
}

std::vector<KeyedRecord> stable_reference(
    const std::vector<KeyedRecord>& a, const std::vector<KeyedRecord>& b) {
  std::vector<KeyedRecord> out(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), out.begin());
  return out;
}

struct Shape {
  std::size_t m, n;
};
constexpr Shape kShapes[] = {
    {0, 0}, {1, 0}, {0, 1}, {1, 1}, {7, 5}, {128, 128}, {1000, 333},
    {2048, 2048},
};
constexpr unsigned kThreadCounts[] = {1, 2, 3, 8, 16};

class StabilityByDist : public ::testing::TestWithParam<Dist> {};

TEST_P(StabilityByDist, TwoWayMergesPreservePayloadOrder) {
  const Dist dist = GetParam();
  std::uint64_t seed = 0x57ab1e00;
  for (const Shape& shape : kShapes) {
    const auto input = make_merge_input(dist, shape.m, shape.n, seed++);
    const auto a = tag(input.a, 0);
    const auto b = tag(input.b, 1);
    const auto expected = stable_reference(a, b);
    for (const unsigned threads : kThreadCounts) {
      SCOPED_TRACE(::testing::Message()
                   << to_string(dist) << " m=" << shape.m << " n=" << shape.n
                   << " p=" << threads << " seed=" << input.seed);
      const Executor exec{nullptr, threads};
      std::vector<KeyedRecord> out(a.size() + b.size());

      parallel_merge(a.data(), a.size(), b.data(), b.size(), out.data(),
                     exec);
      ASSERT_EQ(out, expected) << "parallel_merge payload order";
      ASSERT_TRUE(is_stable_merge_of(a.data(), a.size(), b.data(), b.size(),
                                     out.data()));

      std::fill(out.begin(), out.end(), KeyedRecord{-1, 0});
      SegmentedConfig seg;
      seg.segment_length = 64;
      segmented_parallel_merge(a.data(), a.size(), b.data(), b.size(),
                               out.data(), seg, exec);
      ASSERT_EQ(out, expected) << "segmented_parallel_merge payload order";

      std::fill(out.begin(), out.end(), KeyedRecord{-1, 0});
      tiled_parallel_merge(a.data(), a.size(), b.data(), b.size(), out.data(),
                           std::size_t{96}, exec);
      ASSERT_EQ(out, expected) << "tiled_parallel_merge payload order";

      ASSERT_EQ(parallel_multiway_merge(
                    std::vector<std::vector<KeyedRecord>>{a, b}, exec),
                expected)
          << "multiway k=2 payload order";
    }
  }
}

TEST_P(StabilityByDist, MultiwayTiesFavourLowerRunIndex) {
  const Dist dist = GetParam();
  Xoshiro256 rng(0x4b57ab1eULL);
  for (int iter = 0; iter < 6; ++iter) {
    const std::size_t k = 2 + rng.bounded(6);
    std::vector<std::vector<KeyedRecord>> runs(k);
    for (std::size_t r = 0; r < k; ++r) {
      const auto input =
          make_merge_input(dist, rng.bounded(500), 0, rng());
      runs[r] = tag(input.a, static_cast<std::uint32_t>(r));
    }
    // Left-to-right stable folding is the reference: a tie between runs
    // r < s resolves to r in every prefix merge, so the fold preserves
    // lowest-run-first priority.
    std::vector<KeyedRecord> expected;
    for (const auto& run : runs) {
      std::vector<KeyedRecord> next(expected.size() + run.size());
      std::merge(expected.begin(), expected.end(), run.begin(), run.end(),
                 next.begin());
      expected = std::move(next);
    }
    for (const unsigned threads : kThreadCounts) {
      SCOPED_TRACE(::testing::Message() << to_string(dist) << " k=" << k
                                        << " p=" << threads << " iter="
                                        << iter);
      ASSERT_EQ(parallel_multiway_merge(runs, Executor{nullptr, threads}),
                expected);
    }
  }
}

TEST_P(StabilityByDist, MergeByKeyCarriesValuesStably) {
  const Dist dist = GetParam();
  std::uint64_t seed = 0xb7a10e00;
  for (const Shape& shape : kShapes) {
    const auto input = make_merge_input(dist, shape.m, shape.n, seed++);
    const auto a = tag(input.a, 0);
    const auto b = tag(input.b, 1);
    const auto expected = stable_reference(a, b);
    std::vector<std::uint32_t> va(shape.m), vb(shape.n);
    for (std::size_t i = 0; i < shape.m; ++i) va[i] = a[i].payload;
    for (std::size_t j = 0; j < shape.n; ++j) vb[j] = b[j].payload;
    for (const unsigned threads : kThreadCounts) {
      SCOPED_TRACE(::testing::Message()
                   << to_string(dist) << " m=" << shape.m << " n=" << shape.n
                   << " p=" << threads << " seed=" << input.seed);
      const auto [keys, values] = parallel_merge_by_key(
          input.a, va, input.b, vb, Executor{nullptr, threads});
      ASSERT_EQ(keys.size(), expected.size());
      ASSERT_EQ(values.size(), expected.size());
      for (std::size_t i = 0; i < expected.size(); ++i) {
        ASSERT_EQ(keys[i], expected[i].key) << "index " << i;
        ASSERT_EQ(values[i], expected[i].payload) << "index " << i;
      }
    }
  }
}

TEST_P(StabilityByDist, SetOpsPickTheExactElementsStdWould) {
  // Set operations have a stronger contract than "the right keys": the
  // std algorithms specify WHICH side each survivor is copied from (union
  // prefers A's copy of a matched tie; symmetric difference keeps the
  // unmatched surplus of the longer tie group). Payloads expose the
  // provenance, so payload equality proves element-exact agreement.
  const Dist dist = GetParam();
  std::uint64_t seed = 0x5e7ab1e0;
  for (const Shape& shape : kShapes) {
    const auto input = make_merge_input(dist, shape.m, shape.n, seed++);
    const auto a = tag(input.a, 0);
    const auto b = tag(input.b, 1);
    std::vector<KeyedRecord> uni, inter, diff, sym;
    std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(uni));
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(inter));
    std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(diff));
    std::set_symmetric_difference(a.begin(), a.end(), b.begin(), b.end(),
                                  std::back_inserter(sym));
    for (const unsigned threads : kThreadCounts) {
      SCOPED_TRACE(::testing::Message()
                   << to_string(dist) << " m=" << shape.m << " n=" << shape.n
                   << " p=" << threads << " seed=" << input.seed);
      const Executor exec{nullptr, threads};
      ASSERT_EQ(parallel_set_union(a, b, exec), uni) << "union payloads";
      ASSERT_EQ(parallel_set_intersection(a, b, exec), inter)
          << "intersection payloads";
      ASSERT_EQ(parallel_set_difference(a, b, exec), diff)
          << "difference payloads";
      ASSERT_EQ(parallel_set_symmetric_difference(a, b, exec), sym)
          << "symmetric difference payloads";
    }
  }
}

TEST_P(StabilityByDist, StreamMergerPreservesPayloadOrder) {
  // Randomly chunked pushes with interleaved partial pulls must reproduce
  // the one-shot stable merge payload-for-payload: the incremental
  // exhaustion-diagonal logic may never emit a not-yet-determined element
  // or resolve a cross-boundary tie differently than std::merge.
  const Dist dist = GetParam();
  Xoshiro256 rng(0x57e3a300 + static_cast<std::uint64_t>(dist));
  for (int iter = 0; iter < 4; ++iter) {
    const auto input =
        make_merge_input(dist, 500 + rng.bounded(1500),
                         500 + rng.bounded(1500), rng());
    const auto a = tag(input.a, 0);
    const auto b = tag(input.b, 1);
    const auto expected = stable_reference(a, b);
    const unsigned threads = static_cast<unsigned>(1 + rng.bounded(8));
    SCOPED_TRACE(::testing::Message()
                 << to_string(dist) << " m=" << a.size() << " n=" << b.size()
                 << " p=" << threads << " iter=" << iter);
    StreamMerger<KeyedRecord> merger({}, Executor{nullptr, threads});
    std::vector<KeyedRecord> out;
    std::size_t fed_a = 0, fed_b = 0;
    while (merger.a_open() || merger.b_open() || !merger.finished()) {
      const std::uint64_t action = rng.bounded(4);
      if (action == 0 && merger.a_open()) {
        const std::size_t take =
            std::min<std::size_t>(rng.bounded(400), a.size() - fed_a);
        merger.push_a(std::span<const KeyedRecord>(a.data() + fed_a, take));
        fed_a += take;
        if (fed_a == a.size()) merger.close_a();
      } else if (action == 1 && merger.b_open()) {
        const std::size_t take =
            std::min<std::size_t>(rng.bounded(400), b.size() - fed_b);
        merger.push_b(std::span<const KeyedRecord>(b.data() + fed_b, take));
        fed_b += take;
        if (fed_b == b.size()) merger.close_b();
      } else {
        std::vector<KeyedRecord> chunk(1 + rng.bounded(600));
        chunk.resize(merger.pull(std::span<KeyedRecord>(chunk)));
        out.insert(out.end(), chunk.begin(), chunk.end());
      }
    }
    ASSERT_EQ(out, expected) << "streamed payload order";
  }
}

TEST_P(StabilityByDist, ExternalSortMatchesStableSortPayloadExactly) {
  // The external path adds run formation, k-way merging with run-index
  // tie-breaks, and block-granular round-trips through the device — any
  // of which could silently reorder ties. Payload-exact equality with
  // std::stable_sort over the same shuffled input pins all of it down.
  const Dist dist = GetParam();
  Xoshiro256 rng(0xe87e3a00 + static_cast<std::uint64_t>(dist));
  for (int iter = 0; iter < 2; ++iter) {
    const auto input = make_merge_input(dist, 1000 + rng.bounded(2000), 0,
                                        rng());
    // Deterministic shuffle of the sorted keys, then payload = position
    // AFTER the shuffle (what a stable sort must preserve for ties).
    auto keys = input.a;
    for (std::size_t i = keys.size(); i > 1; --i)
      std::swap(keys[i - 1], keys[rng.bounded(i)]);
    std::vector<KeyedRecord> data(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i)
      data[i] = KeyedRecord{keys[i], static_cast<std::uint32_t>(i)};
    auto expected = data;
    std::stable_sort(expected.begin(), expected.end());

    const unsigned threads = static_cast<unsigned>(1 + rng.bounded(4));
    SCOPED_TRACE(::testing::Message() << to_string(dist) << " n="
                                      << data.size() << " p=" << threads
                                      << " iter=" << iter);
    extmem::DeviceConfig device_config;
    device_config.block_bytes = 1024;  // 128 records: forces real merging
    extmem::BlockDevice device(device_config);
    extmem::ExternalSortConfig config;
    config.memory_elems = 256;
    config.fan_in = 2 + static_cast<std::size_t>(rng.bounded(3));
    config.exec.threads = threads;
    ASSERT_EQ(extmem::external_sort_vector(device, data, config), expected)
        << "external sort payload order";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Dists, StabilityByDist, ::testing::ValuesIn(kAllDists),
    [](const ::testing::TestParamInfo<Dist>& param_info) {
      return test::dist_name(param_info.param);
    });

// Sorts: payloads are pre-sort positions; a stable sort must match
// std::stable_sort exactly, payloads included.
TEST(StabilitySorts, ParallelSortsMatchStableSort) {
  Xoshiro256 rng(0x5047ab1eULL);
  for (int iter = 0; iter < 8; ++iter) {
    const std::size_t n = iter < 2 ? iter : (std::size_t{1} << (5 + iter));
    const unsigned threads = static_cast<unsigned>(1 + rng.bounded(12));
    // Tiny key universe => massive duplication => ties everywhere.
    const std::int32_t universe = 1 + static_cast<std::int32_t>(rng.bounded(8));
    std::vector<KeyedRecord> data(n);
    for (std::size_t i = 0; i < n; ++i)
      data[i] = KeyedRecord{
          static_cast<std::int32_t>(
              rng.bounded(static_cast<std::uint64_t>(universe))),
          static_cast<std::uint32_t>(i)};
    SCOPED_TRACE(::testing::Message() << "n=" << n << " p=" << threads
                                      << " universe=" << universe);
    auto expected = data;
    std::stable_sort(expected.begin(), expected.end());

    auto d1 = data;
    parallel_merge_sort(d1.data(), n, Executor{nullptr, threads});
    ASSERT_EQ(d1, expected) << "parallel_merge_sort payload order";

    auto d2 = data;
    multiway_merge_sort(d2.data(), n, Executor{nullptr, threads});
    ASSERT_EQ(d2, expected) << "multiway_merge_sort payload order";
  }
}

}  // namespace
}  // namespace mp
