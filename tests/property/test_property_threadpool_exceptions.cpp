// ThreadPool exception-safety contract (threading.hpp): "Exceptions thrown
// by a lane are captured and rethrown on the calling thread after every
// lane has finished, so a failing comparator cannot leave the pool
// wedged." Nothing exercised that claim before this file. Each scenario
// ends by reusing the same pool for a clean merge, and the ctest TIMEOUT
// on this binary turns any wedge into a failure rather than a hang.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/mergepath.hpp"
#include "../test_support.hpp"
#include "util/data_gen.hpp"
#include "util/threading.hpp"

namespace mp {
namespace {

struct ComparatorBomb : std::runtime_error {
  ComparatorBomb() : std::runtime_error("comparator bomb") {}
};

// Throws whenever it is asked to order the planted key.
struct ThrowOnKey {
  std::int32_t bomb;
  bool operator()(std::int32_t x, std::int32_t y) const {
    if (x == bomb || y == bomb) throw ComparatorBomb();
    return x < y;
  }
};

void expect_pool_still_merges(ThreadPool& pool, unsigned lanes,
                              std::uint64_t seed) {
  const auto input = make_merge_input(Dist::kUniform, 4096, 4096, seed);
  const auto expected = test::reference_merge(input.a, input.b);
  std::vector<std::int32_t> out(input.a.size() + input.b.size());
  parallel_merge(input.a.data(), input.a.size(), input.b.data(),
                 input.b.size(), out.data(), Executor{&pool, lanes});
  ASSERT_EQ(out, expected) << "pool no longer merges correctly";
}

TEST(ThreadPoolExceptions, MiddleLaneThrowIsRethrownAndAllLanesRun) {
  ThreadPool pool(3);
  for (int round = 0; round < 25; ++round) {
    std::atomic<unsigned> ran{0};
    EXPECT_THROW(
        pool.parallel_for_lanes(8,
                                [&](unsigned lane) {
                                  ran.fetch_add(1);
                                  if (lane == 4)
                                    throw std::runtime_error("lane 4 failed");
                                }),
        std::runtime_error)
        << "round " << round;
    // The barrier semantics hold even on failure: every lane executed.
    EXPECT_EQ(ran.load(), 8u) << "round " << round;
    expect_pool_still_merges(pool, 4, 0xdead0000ULL + round);
  }
}

TEST(ThreadPoolExceptions, EveryLaneThrowingStillRethrowsExactlyOnce) {
  ThreadPool pool(4);
  for (int round = 0; round < 25; ++round) {
    EXPECT_THROW(pool.parallel_for_lanes(
                     16, [&](unsigned) { throw ComparatorBomb(); }),
                 ComparatorBomb);
    expect_pool_still_merges(pool, 5, 0xdeae0000ULL + round);
  }
}

TEST(ThreadPoolExceptions, ThrowingComparatorInsideMergeDoesNotWedgePool) {
  ThreadPool pool(7);
  auto input = make_merge_input(Dist::kUniform, 20000, 20000, 0x7407);
  // Plant the bomb mid-A so a middle lane's diagonal search or merge loop
  // trips it while other lanes are running normally.
  const std::int32_t bomb = input.a[input.a.size() / 2];
  for (int round = 0; round < 10; ++round) {
    std::vector<std::int32_t> out(input.a.size() + input.b.size());
    EXPECT_THROW(
        parallel_merge(input.a.data(), input.a.size(), input.b.data(),
                       input.b.size(), out.data(), Executor{&pool, 8},
                       ThrowOnKey{bomb}),
        ComparatorBomb)
        << "round " << round;
    expect_pool_still_merges(pool, 8, 0xdeaf0000ULL + round);
  }
}

TEST(ThreadPoolExceptions, ThrowingComparatorInsideSortDoesNotWedgePool) {
  ThreadPool pool(5);
  auto data = make_unsorted_values(30000, 0x50b0);
  const std::int32_t bomb = data[data.size() / 3];
  auto scratch = data;
  EXPECT_THROW(parallel_merge_sort(scratch.data(), scratch.size(),
                                   Executor{&pool, 6}, ThrowOnKey{bomb}),
               ComparatorBomb);
  expect_pool_still_merges(pool, 6, 0xdeb00000ULL);
}

}  // namespace
}  // namespace mp
