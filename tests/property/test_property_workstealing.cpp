// Work-stealing scheduler stress: the contracts tasksched.hpp promises,
// attacked with oversubscription, hostile nesting shapes and throwing
// tasks rather than examples.
//
// Shapes covered:
//  - deep par_do chains and wide par_do trees on a scheduler with far
//    fewer workers than tasks, driven concurrently from more external
//    run() threads than workers (help-first joins are what keep this
//    from deadlocking — a wedged scheduler fails as a ctest TIMEOUT);
//  - throwing tasks at every nesting depth: both halves of every par_do
//    still execute, exactly one exception reaches the run() caller;
//  - a 200-seed byte-exact differential of par_merge_recursive against
//    parallel_merge (both must produce the unique A-priority stable
//    merge), plus payload-exact KeyedRecord stability — extending the
//    PR 1 property layer to the second scheduling shape;
//  - zero-worker determinism: the whole tree runs depth-first f-then-g
//    on the caller, twice in a row, with zero steals.
//
// Every randomised case prints its seed via SCOPED_TRACE.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "../test_support.hpp"
#include "core/mergepath.hpp"
#include "util/data_gen.hpp"
#include "util/rng.hpp"
#include "util/tasksched.hpp"

namespace mp {
namespace {

// ---- nesting shapes -------------------------------------------------------

/// Binary par_do tree of the given depth; every leaf bumps the counter.
/// Returns the number of leaves (2^depth).
std::uint64_t wide_tree(int depth, std::atomic<std::uint64_t>& leaves) {
  if (depth == 0) {
    leaves.fetch_add(1, std::memory_order_relaxed);
    return 1;
  }
  std::uint64_t l = 0, r = 0;
  TaskScheduler::par_do([&] { l = wide_tree(depth - 1, leaves); },
                        [&] { r = wide_tree(depth - 1, leaves); });
  return l + r;
}

/// Linear par_do chain: each level forks one leaf and one deeper chain,
/// so nesting depth equals `depth` while task count stays linear.
void deep_chain(int depth, std::atomic<std::uint64_t>& hits) {
  hits.fetch_add(1, std::memory_order_relaxed);
  if (depth == 0) return;
  TaskScheduler::par_do(
      [&] { deep_chain(depth - 1, hits); },
      [&] { hits.fetch_add(1, std::memory_order_relaxed); });
}

TEST(WorkStealing, WideNestingUnderOversubscription) {
  TaskScheduler sched(3);  // 12 tree levels = 4096 leaves on 3 workers
  std::atomic<std::uint64_t> leaves{0};
  std::uint64_t returned = 0;
  sched.run([&] { returned = wide_tree(12, leaves); });
  EXPECT_EQ(returned, 4096u);
  EXPECT_EQ(leaves.load(), 4096u);
  EXPECT_GE(sched.stats().max_depth, 12u);
}

TEST(WorkStealing, DeepNestingDoesNotDeadlock) {
  TaskScheduler sched(2);
  std::atomic<std::uint64_t> hits{0};
  sched.run([&] { deep_chain(800, hits); });
  // One hit per level plus the forked leaf of each of the 800 par_dos.
  EXPECT_EQ(hits.load(), 801u + 800u);
  EXPECT_GE(sched.stats().max_depth, 100u);
}

TEST(WorkStealing, MoreExternalCallersThanWorkers) {
  // 6 concurrent run() callers on 2 workers: external threads must make
  // progress as stealing peers even when every worker is busy elsewhere.
  TaskScheduler sched(2);
  constexpr int kCallers = 6;
  std::vector<std::uint64_t> results(kCallers, 0);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  std::atomic<std::uint64_t> leaves{0};
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int iter = 0; iter < 8; ++iter)
        sched.run([&] { results[c] += wide_tree(8, leaves); });
    });
  }
  for (auto& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c)
    EXPECT_EQ(results[c], 8u * 256u) << "caller " << c;
  EXPECT_EQ(leaves.load(), kCallers * 8u * 256u);
}

// ---- exception propagation ------------------------------------------------

/// Binary tree where leaves whose index is in `throwers` throw after
/// bumping the execution counter. Leaf indexing is the in-order position
/// so a seeded test can aim a throw at any depth/side combination.
void throwing_tree(int depth, std::uint32_t index,
                   const std::vector<bool>& throwers,
                   std::atomic<std::uint64_t>& executed) {
  if (depth == 0) {
    executed.fetch_add(1, std::memory_order_relaxed);
    if (throwers[index])
      throw std::runtime_error("leaf " + std::to_string(index));
    return;
  }
  TaskScheduler::par_do(
      [&] { throwing_tree(depth - 1, index * 2, throwers, executed); },
      [&] { throwing_tree(depth - 1, index * 2 + 1, throwers, executed); });
}

TEST(WorkStealing, ThrowingTasksAtEveryDepthPropagateExactlyOnce) {
  TaskScheduler sched(3);
  constexpr int kDepth = 7;  // 128 leaves
  constexpr std::uint32_t kLeaves = 1u << kDepth;
  Xoshiro256 rng(0x7512ULL);
  for (int iter = 0; iter < 60; ++iter) {
    const std::uint64_t seed = rng();
    SCOPED_TRACE(::testing::Message() << "iter=" << iter << " seed=" << seed);
    Xoshiro256 local(seed);
    std::vector<bool> throwers(kLeaves, false);
    // Sweep the throw count from a single leaf (aimed at a random depth
    // boundary) up to one-in-four of all leaves.
    const int n_throwers = 1 + static_cast<int>(local.bounded(kLeaves / 4));
    for (int t = 0; t < n_throwers; ++t)
      throwers[local.bounded(kLeaves)] = true;
    const auto expected_throwing =
        static_cast<std::uint64_t>(
            std::count(throwers.begin(), throwers.end(), true));

    std::atomic<std::uint64_t> executed{0};
    int caught = 0;
    std::string what;
    try {
      sched.run([&] { throwing_tree(kDepth, 0, throwers, executed); });
    } catch (const std::runtime_error& e) {
      ++caught;
      what = e.what();
    }
    ASSERT_EQ(caught, 1) << "exactly one exception must escape run()";
    // The escaping error is one of the planted ones...
    ASSERT_EQ(what.rfind("leaf ", 0), 0u);
    const auto idx = static_cast<std::uint32_t>(
        std::stoul(what.substr(5)));
    ASSERT_LT(idx, kLeaves);
    ASSERT_TRUE(throwers[idx]) << what << " was never planted";
    // ...and a throw never cancels siblings: every leaf still executed.
    ASSERT_EQ(executed.load(), kLeaves)
        << expected_throwing << " planted throwers";
  }
}

TEST(WorkStealing, SchedulerIsReusableAfterExceptions) {
  TaskScheduler sched(2);
  for (int iter = 0; iter < 50; ++iter) {
    EXPECT_THROW(
        sched.run([] { throw std::logic_error("root"); }), std::logic_error);
    std::atomic<std::uint64_t> leaves{0};
    sched.run([&] { wide_tree(5, leaves); });
    ASSERT_EQ(leaves.load(), 32u) << "iter " << iter;
  }
}

TEST(WorkStealing, BothHalvesThrowingKeepsFirstError) {
  TaskScheduler sched(1);
  sched.run([] {
    try {
      TaskScheduler::par_do([] { throw std::runtime_error("from f"); },
                            [] { throw std::runtime_error("from g"); });
      FAIL() << "par_do must rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "from f");
    }
  });
}

// ---- differential: recursive splitting vs static lanes --------------------

TEST(WorkStealing, RecursiveMergeMatchesParallelMergeAcross200Seeds) {
  TaskScheduler sched(3);
  Xoshiro256 rng(0x200dULL);
  for (int iter = 0; iter < 200; ++iter) {
    const Dist dist = kAllDists[rng.bounded(std::size(kAllDists))];
    const std::size_t m = rng.bounded(30000);
    const std::size_t n = rng.bounded(30000);
    const std::size_t grain = 1 + rng.bounded(8192);
    const unsigned lanes = 1 + static_cast<unsigned>(rng.bounded(16));
    const std::uint64_t seed = rng();
    SCOPED_TRACE(::testing::Message()
                 << to_string(dist) << " m=" << m << " n=" << n << " grain="
                 << grain << " lanes=" << lanes << " seed=" << seed);
    const auto input = make_merge_input(dist, m, n, seed);

    std::vector<std::int32_t> expect(m + n), got(m + n);
    parallel_merge(input.a.data(), m, input.b.data(), n, expect.data(),
                   Executor{nullptr, lanes});
    RecursiveConfig cfg;
    cfg.scheduler = &sched;
    cfg.merge_grain = grain;
    par_merge_recursive(input.a.data(), m, input.b.data(), n, got.data(),
                        cfg);
    ASSERT_EQ(got, expect);
  }
}

TEST(WorkStealing, RecursiveMergeIsPayloadExactStable) {
  // KeyedRecord payload encodes (origin, index): equality below is
  // byte-exact stability, not just key order. Tiny key universes force
  // long tie runs across both inputs.
  TaskScheduler sched(2);
  Xoshiro256 rng(0x57abULL);
  for (int iter = 0; iter < 40; ++iter) {
    const std::size_t m = rng.bounded(12000);
    const std::size_t n = rng.bounded(12000);
    const auto universe = static_cast<std::int32_t>(1 + rng.bounded(40));
    const std::uint64_t seed = rng();
    SCOPED_TRACE(::testing::Message() << "m=" << m << " n=" << n
                                      << " universe=" << universe
                                      << " seed=" << seed);
    const auto input = make_keyed_input(m, n, universe, seed);

    std::vector<KeyedRecord> expect(m + n), got(m + n);
    std::merge(input.a.begin(), input.a.end(), input.b.begin(),
               input.b.end(), expect.begin());
    RecursiveConfig cfg;
    cfg.scheduler = &sched;
    cfg.merge_grain = 1 + rng.bounded(512);
    par_merge_recursive(input.a.data(), m, input.b.data(), n, got.data(),
                        cfg);
    ASSERT_EQ(got, expect);
  }
}

TEST(WorkStealing, RecursiveSortIsPayloadExactStable) {
  TaskScheduler sched(2);
  Xoshiro256 rng(0x50f7ULL);
  for (int iter = 0; iter < 25; ++iter) {
    const std::size_t n = rng.bounded(20000);
    const auto universe = static_cast<std::int32_t>(1 + rng.bounded(50));
    const std::uint64_t seed = rng();
    SCOPED_TRACE(::testing::Message()
                 << "n=" << n << " universe=" << universe << " seed=" << seed);
    Xoshiro256 data_rng(seed);
    std::vector<KeyedRecord> data(n);
    for (std::size_t i = 0; i < n; ++i)
      data[i] = KeyedRecord{
          static_cast<std::int32_t>(data_rng.bounded(
              static_cast<std::uint64_t>(universe))),
          static_cast<std::uint32_t>(i)};
    std::vector<KeyedRecord> expect = data;
    std::stable_sort(expect.begin(), expect.end());

    RecursiveConfig cfg;
    cfg.scheduler = &sched;
    cfg.sort_grain = 1 + rng.bounded(2048);
    cfg.merge_grain = 1 + rng.bounded(2048);
    recursive_merge_sort(data.data(), data.size(), cfg);
    ASSERT_EQ(data, expect);
  }
}

// ---- determinism ----------------------------------------------------------

TEST(WorkStealing, ZeroWorkerSchedulerIsDeterministicAndStealFree) {
  TaskScheduler sched(0);
  EXPECT_EQ(sched.workers(), 0u);
  const auto input = make_merge_input(Dist::kFewDuplicates, 40000, 35000, 77);
  const auto expected = test::reference_merge(input.a, input.b);

  RecursiveConfig cfg;
  cfg.scheduler = &sched;
  cfg.merge_grain = 512;
  for (int pass = 0; pass < 2; ++pass) {
    std::vector<std::int32_t> out(input.a.size() + input.b.size());
    par_merge_recursive(input.a.data(), input.a.size(), input.b.data(),
                        input.b.size(), out.data(), cfg);
    ASSERT_EQ(out, expected) << "pass " << pass;
  }
  const auto st = sched.stats();
  EXPECT_GT(st.spawns, 0u);
  EXPECT_EQ(st.steals, 0u)
      << "no workers and one caller: nothing can steal";
}

TEST(WorkStealing, ParDoOutsideAnySchedulerRunsSerially) {
  // No run(), no worker thread: par_do must degrade to plain serial
  // calls with the same exception contract.
  ASSERT_FALSE(TaskScheduler::in_task());
  int f_ran = 0, g_ran = 0;
  TaskScheduler::par_do([&] { ++f_ran; }, [&] { ++g_ran; });
  EXPECT_EQ(f_ran, 1);
  EXPECT_EQ(g_ran, 1);
  try {
    TaskScheduler::par_do([] { throw std::runtime_error("serial f"); },
                          [&] { ++g_ran; });
    FAIL() << "must rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "serial f");
  }
  EXPECT_EQ(g_ran, 2) << "g still runs when f throws";
}

}  // namespace
}  // namespace mp
