// Tests for the related-work baselines (S11-S15): Shiloach-Vishkin,
// Akl-Santoro and Deo-Sarkar produce the exact stable merge; the
// Deo-Sarkar selection coincides with the diagonal search; bitonic
// sort/merge are correct (though unstable); and the naive equal split
// demonstrably fails on the paper's adversarial input (E8).

#include "baselines/baselines.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/merge_path.hpp"
#include "test_support.hpp"
#include "util/data_gen.hpp"

namespace mp {
namespace {

using namespace mp::baselines;

class BaselineCorrectness
    : public ::testing::TestWithParam<std::tuple<Dist, unsigned>> {};

TEST_P(BaselineCorrectness, AllCorrectBaselinesMatchReference) {
  const auto [dist, threads] = GetParam();
  const auto input = make_merge_input(dist, 1200, 900, 101);
  const auto expected = test::reference_merge(input.a, input.b);
  const Executor exec{nullptr, threads};

  EXPECT_EQ(shiloach_vishkin_merge(input.a, input.b, exec), expected)
      << "shiloach_vishkin";
  EXPECT_EQ(akl_santoro_merge(input.a, input.b, exec), expected)
      << "akl_santoro";
  EXPECT_EQ(deo_sarkar_merge(input.a, input.b, exec), expected)
      << "deo_sarkar";
  EXPECT_EQ(bitonic_merge(input.a, input.b, exec), expected) << "bitonic";
}

INSTANTIATE_TEST_SUITE_P(
    DistsAndThreads, BaselineCorrectness,
    ::testing::Combine(::testing::ValuesIn(kAllDists),
                       ::testing::Values(1u, 2u, 4u, 7u, 12u)),
    [](const auto& pinfo) {
      return to_string(std::get<0>(pinfo.param)) + "_p" +
             std::to_string(std::get<1>(pinfo.param));
    });

TEST(ShiloachVishkin, PartitionImbalanceOnSkewedInput) {
  // disjoint_low stacks all of A before all of B: the segment straddling
  // the A/B crossover spans a full A block AND a full B block, so some
  // processor is assigned well over the N/p mean — but never more than
  // the 2N/p bound the paper quotes for [6].
  const auto input = make_merge_input(Dist::kDisjointLow, 1000, 1000, 103);
  std::vector<std::int32_t> out(2000);
  const unsigned p = 4;
  const SvPartition part = shiloach_vishkin_merge(
      input.a.data(), 1000, input.b.data(), 1000, out.data(),
      Executor{nullptr, p});
  EXPECT_EQ(out, test::reference_merge(input.a, input.b));
  const std::size_t mean = 2000 / p;
  EXPECT_GT(part.max_total(), mean + mean / 4);  // visibly imbalanced
  EXPECT_LE(part.max_total(), 2 * mean + 2);     // the paper's 2N/p bound
}

TEST(ShiloachVishkin, NeverExceedsTwoNOverP) {
  // Property across all distributions and several p: assigned <= 2N/p.
  for (Dist dist : kAllDists) {
    const auto input = make_merge_input(dist, 1111, 999, 211);
    std::vector<std::int32_t> out(2110);
    for (unsigned p : {2u, 3u, 8u}) {
      const SvPartition part = shiloach_vishkin_merge(
          input.a.data(), 1111, input.b.data(), 999, out.data(),
          Executor{nullptr, p});
      EXPECT_EQ(out, test::reference_merge(input.a, input.b));
      // Each of a processor's two segments spans at most one A block and
      // one B block: <= ceil(m/p) + ceil(n/p) per segment.
      const std::size_t bound =
          2 * ((1111 + p - 1) / p + (999 + p - 1) / p);
      EXPECT_LE(part.max_total(), bound) << to_string(dist) << " p=" << p;
    }
  }
}

TEST(ShiloachVishkin, StableWithDuplicates) {
  const auto input = make_keyed_input(1000, 1000, 6, 107);
  std::vector<KeyedRecord> out(2000);
  shiloach_vishkin_merge(input.a.data(), 1000, input.b.data(), 1000,
                         out.data(), Executor{nullptr, 5});
  for (std::size_t i = 1; i < out.size(); ++i) {
    ASSERT_LE(out[i - 1].key, out[i].key);
    if (out[i - 1].key == out[i].key) {
      ASSERT_LT(out[i - 1].payload, out[i].payload) << "at " << i;
    }
  }
}

TEST(AklSantoro, PartitionHalvesAreEqual) {
  const auto input = make_merge_input(Dist::kUniform, 4096, 4096, 109);
  // One round: two segments of exactly half the output each.
  const auto segments = akl_santoro_partition(input.a.data(), 4096,
                                              input.b.data(), 4096, 1u);
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].total(), 4096u);
  EXPECT_EQ(segments[1].total(), 4096u);
  // Three rounds: eight equal leaves (to within rounding).
  const auto leaves = akl_santoro_partition(input.a.data(), 4096,
                                            input.b.data(), 4096, 3u);
  ASSERT_EQ(leaves.size(), 8u);
  for (const auto& leaf : leaves) {
    EXPECT_GE(leaf.total(), 1023u);
    EXPECT_LE(leaf.total(), 1025u);
  }
}

TEST(AklSantoro, SegmentsAreOrderConsistent) {
  const auto input = make_merge_input(Dist::kFewDuplicates, 2000, 1500, 113);
  std::vector<std::int32_t> out(3500);
  const auto segments = akl_santoro_merge(input.a.data(), 2000,
                                          input.b.data(), 1500, out.data(),
                                          Executor{nullptr, 8});
  EXPECT_EQ(out, test::reference_merge(input.a, input.b));
  // Leaves tile both arrays contiguously.
  std::size_t a_cursor = 0, b_cursor = 0, out_cursor = 0;
  for (const auto& seg : segments) {
    EXPECT_EQ(seg.a_begin, a_cursor);
    EXPECT_EQ(seg.b_begin, b_cursor);
    EXPECT_EQ(seg.out_begin, out_cursor);
    a_cursor = seg.a_end;
    b_cursor = seg.b_end;
    out_cursor += seg.total();
  }
  EXPECT_EQ(a_cursor, 2000u);
  EXPECT_EQ(b_cursor, 1500u);
}

TEST(DeoSarkar, KthSplitMatchesDiagonalIntersectionEverywhere) {
  // The two search procedures must find the identical stable co-rank.
  for (Dist dist : kAllDists) {
    const auto input = make_merge_input(dist, 300, 200, 127);
    for (std::size_t k = 0; k <= 500; k += 7) {
      const PathPoint via_select =
          kth_element_split(input.a.data(), 300, input.b.data(), 200, k);
      const PathPoint via_diagonal = path_point_on_diagonal(
          input.a.data(), 300, input.b.data(), 200, k);
      EXPECT_EQ(via_select, via_diagonal)
          << to_string(dist) << " k=" << k;
    }
  }
}

TEST(DeoSarkar, StableWithDuplicates) {
  const auto input = make_keyed_input(800, 1200, 5, 131);
  std::vector<KeyedRecord> out(2000);
  deo_sarkar_merge(input.a.data(), 800, input.b.data(), 1200, out.data(),
                   Executor{nullptr, 6});
  for (std::size_t i = 1; i < out.size(); ++i) {
    ASSERT_LE(out[i - 1].key, out[i].key);
    if (out[i - 1].key == out[i].key) {
      ASSERT_LT(out[i - 1].payload, out[i].payload) << "at " << i;
    }
  }
}

TEST(Bitonic, SortsArbitraryLengths) {
  for (std::size_t n : {0u, 1u, 2u, 3u, 63u, 64u, 65u, 1000u, 4096u}) {
    auto data = make_unsorted_values(n, 300 + n);
    auto expected = data;
    std::sort(expected.begin(), expected.end());
    bitonic_sort(std::span<std::int32_t>(data), Executor{nullptr, 4});
    EXPECT_EQ(data, expected) << "n=" << n;
  }
}

TEST(Bitonic, MergeHandlesUnequalAndEmptySides) {
  constexpr std::pair<std::size_t, std::size_t> kShapes[] = {
      {0, 0}, {0, 100}, {100, 0}, {1, 1}, {100, 37}, {512, 512}, {511, 513}};
  for (const auto& [m, n] : kShapes) {
    const auto input = make_merge_input(Dist::kUniform, m, n, 400 + m + n);
    auto out = bitonic_merge(input.a, input.b, Executor{nullptr, 3});
    EXPECT_EQ(out, test::reference_merge(input.a, input.b))
        << "m=" << m << " n=" << n;
  }
}

TEST(Bitonic, WorkIsSuperlinear) {
  // O(N log N) merge network vs O(N) merge: compare counted comparisons.
  const auto input = make_merge_input(Dist::kUniform, 4096, 4096, 137);
  std::vector<std::int32_t> out(8192);
  ThreadPool serial(0);
  std::vector<OpCounts> counts(1);
  bitonic_merge(input.a.data(), 4096, input.b.data(), 4096, out.data(),
                Executor{&serial, 1}, std::less<>{},
                std::span<OpCounts>(counts));
  // 8192 * log2(8192) / 2 = 8192 * 13 / 2 comparisons in the network.
  EXPECT_GE(counts[0].compares, 8192u * 13 / 2);
}

TEST(RadixSort, SortsRandomDataAcrossThreadCounts) {
  for (std::size_t n : {0u, 1u, 2u, 255u, 256u, 65536u, 100001u}) {
    for (unsigned p : {1u, 4u, 13u}) {
      auto data = make_unsorted_values(n, 500 + n + p);
      auto expected = data;
      std::sort(expected.begin(), expected.end());
      parallel_radix_sort(data.data(), n, Executor{nullptr, p});
      EXPECT_EQ(data, expected) << "n=" << n << " p=" << p;
    }
  }
}

TEST(RadixSort, HandlesNegativeValuesAndExtremes) {
  std::vector<std::int32_t> data{
      0,  -1, 1,  std::numeric_limits<std::int32_t>::min(),
      std::numeric_limits<std::int32_t>::max(), -1000000, 1000000, -1, 0};
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  parallel_radix_sort(std::span<std::int32_t>(data), Executor{nullptr, 3});
  EXPECT_EQ(data, expected);
}

TEST(RadixSort, AdversarialBytePatterns) {
  // LSD correctness depends on per-pass stability, which these patterns
  // stress: values differing only in one byte position, per position.
  Xoshiro256 rng(71);
  for (unsigned byte = 0; byte < 4; ++byte) {
    std::vector<std::int32_t> data(20000);
    for (auto& v : data)
      v = static_cast<std::int32_t>(
          static_cast<std::uint32_t>(rng.bounded(256)) << (8 * byte));
    auto expected = data;
    std::sort(expected.begin(), expected.end());
    parallel_radix_sort(data.data(), data.size(), Executor{nullptr, 8});
    EXPECT_EQ(data, expected) << "byte " << byte;
  }
}

TEST(NaiveSplit, FailsOnDisjointInput) {
  // The introduction's counterexample: all of A greater than all of B.
  const auto input = make_merge_input(Dist::kDisjointHigh, 512, 512, 139);
  std::vector<std::int32_t> out(1024);
  naive_split_merge(input.a.data(), 512, input.b.data(), 512, out.data(),
                    Executor{nullptr, 4});
  // The output is a permutation of the union...
  auto sorted_out = out;
  std::sort(sorted_out.begin(), sorted_out.end());
  EXPECT_EQ(sorted_out, test::reference_merge(input.a, input.b));
  // ...but NOT sorted (4 chunk pairs each interleave high-A with low-B).
  EXPECT_FALSE(std::is_sorted(out.begin(), out.end()));
}

TEST(NaiveSplit, HappensToWorkOnPerfectlyAlignedInput) {
  // Interleaved input aligns the chunk pairs, the lucky case: documents
  // that the naive scheme is data-dependent, not merely slow.
  const auto input = make_merge_input(Dist::kInterleaved, 512, 512, 149);
  std::vector<std::int32_t> out(1024);
  naive_split_merge(input.a.data(), 512, input.b.data(), 512, out.data(),
                    Executor{nullptr, 4});
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

}  // namespace
}  // namespace mp
