// Tests for core/cache_sort.hpp (Section IV.C): correctness across sizes,
// cache capacities and thread counts; stability; block-size resolution.

#include "core/cache_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "test_support.hpp"
#include "util/data_gen.hpp"
#include "util/rng.hpp"

namespace mp {
namespace {

class CacheSortParam
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 unsigned>> {};

TEST_P(CacheSortParam, SortsCorrectly) {
  const auto [n, cache_bytes, threads] = GetParam();
  auto data = make_unsorted_values(n, 777 + n + cache_bytes);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  CacheSortConfig config;
  config.cache_bytes = cache_bytes;
  cache_efficient_parallel_sort(data.data(), n, config,
                                Executor{nullptr, threads});
  EXPECT_EQ(data, expected);
}

INSTANTIATE_TEST_SUITE_P(
    SizesCachesThreads, CacheSortParam,
    ::testing::Combine(
        ::testing::Values(std::size_t{0}, std::size_t{1}, std::size_t{7},
                          std::size_t{1000}, std::size_t{40000}),
        // Tiny "caches" force many blocks and many merge rounds.
        ::testing::Values(std::size_t{256}, std::size_t{4096},
                          std::size_t{32768}),
        ::testing::Values(1u, 4u, 9u)),
    [](const auto& pinfo) {
      return "n" + std::to_string(std::get<0>(pinfo.param)) + "_c" +
             std::to_string(std::get<1>(pinfo.param)) + "_p" +
             std::to_string(std::get<2>(pinfo.param));
    });

TEST(CacheSort, IsStable) {
  Xoshiro256 rng(43);
  std::vector<KeyedRecord> data(6000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i].key = static_cast<std::int32_t>(rng.bounded(7));
    data[i].payload = static_cast<std::uint32_t>(i);
  }
  auto expected = data;
  std::stable_sort(expected.begin(), expected.end());
  CacheSortConfig config;
  config.cache_bytes = 4096;  // many blocks and rounds
  cache_efficient_parallel_sort(data.data(), data.size(), config,
                                Executor{nullptr, 5});
  EXPECT_EQ(data, expected);
}

TEST(CacheSort, BlockSizeResolution) {
  CacheSortConfig config;
  config.cache_bytes = 32 * 1024;
  config.block_fraction = 0.5;
  EXPECT_EQ(config.resolve_block_elems<std::int32_t>(), 4096u);
  config.block_fraction = 0.25;
  EXPECT_EQ(config.resolve_block_elems<std::int32_t>(), 2048u);
  // Degenerate fractions still give a workable block.
  config.block_fraction = 0.0;
  EXPECT_GE(config.resolve_block_elems<std::int32_t>(), 2u);
}

TEST(CacheSort, AlreadySortedAndReversed) {
  std::vector<std::int32_t> data(10000);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::int32_t>(i);
  auto expected = data;
  CacheSortConfig config;
  config.cache_bytes = 2048;
  cache_efficient_parallel_sort(data.data(), data.size(), config,
                                Executor{nullptr, 4});
  EXPECT_EQ(data, expected);

  std::reverse(data.begin(), data.end());
  cache_efficient_parallel_sort(data.data(), data.size(), config,
                                Executor{nullptr, 4});
  EXPECT_EQ(data, expected);
}

TEST(CacheSort, CustomComparator) {
  auto data = make_unsorted_values(5000, 47);
  auto expected = data;
  std::sort(expected.begin(), expected.end(), std::greater<>{});
  CacheSortConfig config;
  config.cache_bytes = 4096;
  cache_efficient_parallel_sort(std::span<std::int32_t>(data), config,
                                Executor{nullptr, 3}, std::greater<>{});
  EXPECT_EQ(data, expected);
}

TEST(CacheSort, MatchesParallelSortResult) {
  auto data1 = make_unsorted_values(30000, 53);
  auto data2 = data1;
  parallel_merge_sort(data1.data(), data1.size(), Executor{nullptr, 4});
  CacheSortConfig config;
  config.cache_bytes = 16 * 1024;
  cache_efficient_parallel_sort(data2.data(), data2.size(), config,
                                Executor{nullptr, 4});
  EXPECT_EQ(data1, data2);
}

}  // namespace
}  // namespace mp
