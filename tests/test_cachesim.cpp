// Tests for the cache simulator (S10): set-associative LRU mechanics, miss
// classification, and the traced merge kernels — including the structural
// facts behind the paper's Section IV claims (SPM's in-cache working set;
// 3-way associativity sufficing for the three active windows).

#include "cachesim/cache.hpp"

#include <gtest/gtest.h>

#include "cachesim/traced_merge.hpp"
#include "test_support.hpp"
#include "util/data_gen.hpp"

namespace mp::cachesim {
namespace {

CacheConfig tiny_cache(std::uint32_t assoc, std::uint64_t size = 1024,
                       std::uint32_t line = 64) {
  CacheConfig c;
  c.size_bytes = size;
  c.line_bytes = line;
  c.associativity = assoc;
  return c;
}

TEST(CacheConfig, Validation) {
  EXPECT_TRUE(tiny_cache(2).valid());
  CacheConfig bad = tiny_cache(2);
  bad.line_bytes = 48;  // not a power of two
  EXPECT_FALSE(bad.valid());
  bad = tiny_cache(3, 1024);  // 1024/(64*3) not integral
  EXPECT_FALSE(bad.valid());
  EXPECT_TRUE(tiny_cache(3, 64 * 3 * 4).valid());  // 4 sets x 3 ways
}

TEST(Cache, HitsOnRepeatedAccess) {
  Cache cache(tiny_cache(2));
  EXPECT_EQ(cache.read(0, 4), 1u);   // compulsory miss
  EXPECT_EQ(cache.read(4, 4), 0u);   // same line
  EXPECT_EQ(cache.read(60, 4), 0u);  // still line 0
  EXPECT_EQ(cache.read(64, 4), 1u);  // next line
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().compulsory_misses, 2u);
  EXPECT_EQ(cache.stats().hits(), 2u);
}

TEST(Cache, AccessSpanningTwoLines) {
  Cache cache(tiny_cache(2));
  EXPECT_EQ(cache.read(62, 4), 2u);  // crosses the 64-byte boundary
  EXPECT_EQ(cache.stats().accesses, 2u);
}

TEST(Cache, DirectMappedEvictionIsClassifiedConflict) {
  // 1-way, 128B cache, 64B lines: 2 sets. Lines 0 and 2 collide in set 0
  // while a fully-associative cache of the same 2-line capacity would keep
  // both => the re-miss is a conflict miss.
  Cache cache(tiny_cache(1, 128));
  cache.read(0, 4);                  // set 0 <- line 0 (compulsory)
  cache.read(128, 4);                // set 0 <- line 2, evicts line 0
  EXPECT_EQ(cache.read(0, 4), 1u);   // line 0 gone
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_EQ(cache.stats().compulsory_misses, 2u);
  EXPECT_EQ(cache.stats().conflict_misses, 1u);
}

TEST(Cache, ConflictVsCapacityClassification) {
  // 2 lines total, 1-way (2 sets). Lines 0 and 2 both map to set 0 while
  // set 1 stays empty: misses on re-access are conflict misses (the FA
  // shadow of 2 lines retains both).
  Cache cache(tiny_cache(1, 128));
  cache.read(0, 4);
  cache.read(128, 4);
  cache.read(0, 4);
  cache.read(128, 4);
  EXPECT_EQ(cache.stats().conflict_misses, 2u);
  EXPECT_EQ(cache.stats().capacity_misses, 0u);

  // Now a working set larger than the whole cache: capacity misses.
  Cache cache2(tiny_cache(2, 128));  // 2 lines, fully assoc equivalent
  for (int rep = 0; rep < 2; ++rep)
    for (std::uint64_t addr = 0; addr < 64 * 4; addr += 64)
      cache2.read(addr, 4);
  EXPECT_EQ(cache2.stats().compulsory_misses, 4u);
  EXPECT_GT(cache2.stats().capacity_misses, 0u);
  EXPECT_EQ(cache2.stats().conflict_misses, 0u);
}

TEST(Cache, HigherAssociativityNeverIncreasesConflicts) {
  // Same access pattern, rising associativity: conflict misses must not
  // grow (LRU inclusion holds per set count here empirically).
  const auto input = make_merge_input(Dist::kUniform, 2000, 2000, 7);
  std::uint64_t last = ~0ull;
  for (std::uint32_t assoc : {1u, 2u, 4u, 8u}) {
    Cache cache(tiny_cache(assoc, 4096));
    MergeLayout layout{0, 1 << 20, 2 << 20};
    trace_sequential_merge(input.a, input.b, layout, cache);
    EXPECT_LE(cache.stats().conflict_misses, last) << "assoc " << assoc;
    last = cache.stats().conflict_misses;
  }
}

TEST(Cache, ResetClearsEverything) {
  Cache cache(tiny_cache(2));
  cache.read(0, 4);
  cache.reset();
  EXPECT_EQ(cache.stats().accesses, 0u);
  EXPECT_EQ(cache.read(0, 4), 1u);  // compulsory again after reset
  EXPECT_EQ(cache.stats().compulsory_misses, 1u);
}

// --- Traced kernels.

TEST(TracedMerge, SequentialStreamingMissesMatchCompulsoryModel) {
  // Streaming merge with a big-enough cache: every line of A, B and S is
  // missed exactly once (compulsory) and all other accesses hit.
  const auto input = make_merge_input(Dist::kUniform, 4096, 4096, 11);
  CacheConfig config;
  config.size_bytes = 64 * 1024;
  config.associativity = 8;
  Cache cache(config);
  MergeLayout layout{0, 1 << 20, 2 << 20};
  trace_sequential_merge(input.a, input.b, layout, cache);
  const std::uint64_t lines = (4096u * 4 / 64) * 2   // A and B
                              + (8192u * 4 / 64);    // S
  EXPECT_EQ(cache.stats().misses, lines);
  EXPECT_EQ(cache.stats().compulsory_misses, lines);
}

TEST(TracedMerge, ParallelLanesShareCacheGracefullyWhenLarge) {
  const auto input = make_merge_input(Dist::kUniform, 4096, 4096, 13);
  CacheConfig config;
  config.size_bytes = 256 * 1024;
  config.associativity = 8;
  MergeLayout layout{0, 1 << 20, 2 << 20};

  Cache seq_cache(config);
  const auto seq = trace_sequential_merge(input.a, input.b, layout,
                                          seq_cache);
  Cache par_cache(config);
  const auto par = trace_parallel_merge(input.a, input.b, 8, layout,
                                        par_cache);
  // Large shared cache: parallel execution costs only the extra partition
  // probes; misses stay within a few % of sequential.
  EXPECT_LT(static_cast<double>(par.stats.misses),
            1.05 * static_cast<double>(seq.stats.misses));
  // And the lockstep cycles drop ~linearly.
  EXPECT_LT(par.cycles * 7, seq.cycles);
}

TEST(TracedMerge, CyclesCountMergeSteps) {
  const auto input = make_merge_input(Dist::kUniform, 1000, 1000, 17);
  CacheConfig config;
  config.size_bytes = 32 * 1024;
  config.associativity = 8;
  Cache cache(config);
  MergeLayout layout{0, 1 << 20, 2 << 20};
  const auto result = trace_sequential_merge(input.a, input.b, layout, cache);
  // Sequential: one output element per cycle plus no searches (diag 0).
  EXPECT_EQ(result.cycles, 2000u);
}

TEST(TracedMerge, SegmentedVariantsProduceSameTotalTrafficShape) {
  const auto input = make_merge_input(Dist::kUniform, 8192, 8192, 19);
  CacheConfig config;
  config.size_bytes = 8 * 1024;
  config.associativity = 8;
  MergeLayout layout{0, 1 << 20, 2 << 20};

  Cache c1(config);
  const auto windowed =
      trace_segmented_merge(input.a, input.b, 4, 512, layout, c1);
  Cache c2(config);
  const auto staged = trace_segmented_staged_merge(input.a, input.b, 4, 512,
                                                   layout, 3 << 20, c2);
  // Staged variant touches every element ~2x more (stage + write-back).
  EXPECT_GT(staged.stats.accesses, windowed.stats.accesses);
  // Both complete the merge: reads of A+B happened.
  EXPECT_GT(windowed.stats.reads, 2u * 8192u);
}

TEST(TracedMerge, ThreeWayAssociativitySufficesForWindowedSegments) {
  // The Section IV.B Remark, reproduced structurally: place A, B and S so
  // all three L-length windows alias the same sets (worst case). With the
  // segment working set equal to the cache capacity (3L elements = C),
  // a 3-way cache takes only compulsory misses; a 1-way cache of the SAME
  // capacity thrashes with conflict misses.
  const auto input = make_merge_input(Dist::kUniform, 1 << 14, 1 << 14, 23);
  const std::uint64_t cache_bytes = 12 * 1024;
  const std::size_t L = cache_bytes / 3 / 4;  // L = C/3 elements
  // Adversarial placement: bases congruent modulo the set range of EVERY
  // associativity tested (set range = C/assoc divides C, so any multiple
  // of C aligns all three windows onto the same sets).
  const std::uint64_t stride = cache_bytes * 128;
  MergeLayout layout{0, stride, 2 * stride};

  CacheConfig three;
  three.size_bytes = cache_bytes;
  three.associativity = 3;
  Cache c3(three);
  const auto r3 =
      trace_segmented_merge(input.a, input.b, 1, L, layout, c3);
  // Compulsory-only (modulo the odd boundary line): conflicts ~0.
  EXPECT_LE(r3.stats.conflict_misses + r3.stats.capacity_misses,
            r3.stats.misses / 20);

  CacheConfig one;
  one.size_bytes = cache_bytes;  // same capacity, 192 sets, direct-mapped
  one.associativity = 1;
  Cache c1(one);
  const auto r1 =
      trace_segmented_merge(input.a, input.b, 1, L, layout, c1);
  EXPECT_GT(r1.stats.conflict_misses + r1.stats.capacity_misses,
            r1.stats.compulsory_misses / 2);
}

// --- Cache hierarchy (private L1s + shared LLC).

TEST(Hierarchy, L1FiltersTrafficToSharedLevel) {
  HierarchyConfig config = HierarchyConfig::paper_x5670(1 << 20);
  CacheHierarchy hier(config, 2);
  // Lane 0 streams 1024 consecutive ints: 64 lines; every in-line access
  // after the first hits L1.
  for (std::uint64_t i = 0; i < 1024; ++i)
    hier.read(0, i * 4, 4);
  const HierarchyStats stats = hier.stats();
  EXPECT_EQ(stats.l1.accesses, 1024u);
  EXPECT_EQ(stats.l1.misses, 64u);
  EXPECT_EQ(stats.shared.accesses, 64u);  // only refills reach the LLC
  EXPECT_EQ(stats.shared.misses, 64u);
}

TEST(Hierarchy, PrivateL1sDoNotInterfere) {
  HierarchyConfig config = HierarchyConfig::paper_x5670(1 << 20);
  CacheHierarchy hier(config, 2);
  // Both lanes stream the same addresses: each one warms its OWN L1.
  for (std::uint64_t i = 0; i < 256; ++i) hier.read(0, i * 4, 4);
  for (std::uint64_t i = 0; i < 256; ++i) hier.read(1, i * 4, 4);
  const HierarchyStats stats = hier.stats();
  // Lane 1 misses in its private L1 despite lane 0 having the lines...
  EXPECT_EQ(stats.l1.misses, 32u);
  // ...but hits in the shared level (16 lines each... lane 1's refills all
  // hit the LLC that lane 0's misses populated).
  EXPECT_EQ(stats.shared.accesses, 32u);
  EXPECT_EQ(stats.shared.misses, 16u);
}

TEST(Hierarchy, TracedParallelMergeMatchesCompulsoryAtLLC) {
  // Big private L1s and LLC: the whole traced merge should cost exactly
  // the compulsory lines at the shared level, regardless of lane count —
  // the "no inter-core communication" property on the x86 cache shape.
  const auto input = make_merge_input(Dist::kUniform, 4096, 4096, 31);
  HierarchyConfig config = HierarchyConfig::paper_x5670(8 << 20);
  MergeLayout layout{0, 1 << 20, 2 << 20};
  const std::uint64_t lines = (4096u * 4 / 64) * 2 + (8192u * 4 / 64);

  for (unsigned lanes : {1u, 4u, 8u}) {
    CacheHierarchy hier(config, lanes);
    const auto result =
        trace_parallel_merge_hier(input.a, input.b, lanes, layout, hier);
    EXPECT_EQ(result.stats.shared.misses, lines) << "lanes=" << lanes;
    // L1 misses: compulsory per lane plus the partition probes; bounded.
    EXPECT_LT(result.stats.l1.misses, lines + 64 * lanes) << lanes;
  }
}

TEST(Hierarchy, SegmentedTraceWorksOnHierarchy) {
  const auto input = make_merge_input(Dist::kUniform, 8192, 8192, 37);
  HierarchyConfig config = HierarchyConfig::paper_x5670(4 << 20);
  MergeLayout layout{0, 1 << 20, 2 << 20};
  CacheHierarchy hier(config, 4);
  const auto result =
      trace_segmented_merge_hier(input.a, input.b, 4, 1024, layout, hier);
  // Completes the merge: all input lines read at least once.
  EXPECT_GE(result.stats.l1.reads, 2u * 8192u);
  EXPECT_GT(result.cycles, 0u);
}

TEST(Hierarchy, SharedSimpleCacheVsPrivateL1Contrast) {
  // The paper's two target machines side by side: the basic parallel
  // merge thrashes a small shared 3-way cache (E4) but runs at the
  // compulsory floor with private x86-style L1s.
  const auto input = make_merge_input(Dist::kUniform, 1 << 14, 1 << 14, 41);
  const MergeLayout layout{0, 12288ull * 1024, 2 * 12288ull * 1024};
  const unsigned lanes = 8;

  CacheConfig simple;
  simple.size_bytes = 12 * 1024;
  simple.associativity = 3;
  Cache shared_cache(simple);
  const auto shared_run =
      trace_parallel_merge(input.a, input.b, lanes, layout, shared_cache);

  HierarchyConfig hier_config = HierarchyConfig::paper_x5670(8 << 20);
  CacheHierarchy hier(hier_config, lanes);
  const auto hier_run =
      trace_parallel_merge_hier(input.a, input.b, lanes, layout, hier);

  const double shared_rate = shared_run.stats.miss_rate();
  const double hier_l1_rate =
      static_cast<double>(hier_run.stats.l1.misses) /
      static_cast<double>(hier_run.stats.l1.accesses);
  EXPECT_GT(shared_rate, 5 * hier_l1_rate);
}

TEST(TraceSortRounds, SegmentedRoundsBeatPlainOnSimpleCache) {
  const auto values = make_unsorted_values(1 << 15, 43);
  const std::uint64_t cache_bytes = 12 * 1024;
  const MergeLayout layout{0, 0, cache_bytes * 1024};
  CacheConfig cc;
  cc.size_bytes = cache_bytes;
  cc.associativity = 3;

  Cache c_plain(cc);
  const auto plain = trace_sort_rounds(values, 8, 2048, 0, layout, c_plain);
  Cache c_seg(cc);
  const auto seg = trace_sort_rounds(values, 8, 2048,
                                     cache_bytes / 3 / 4, layout, c_seg);
  // Both trace the same merge tree over the same data...
  EXPECT_GT(plain.stats.accesses, 0u);
  EXPECT_GT(seg.cycles, 0u);
  // ...but the segmented rounds stay near the compulsory floor while the
  // plain rounds thrash (p = 8 scattered windows on a 3-way cache).
  EXPECT_GT(plain.stats.miss_rate(), 5 * seg.stats.miss_rate());
}

TEST(TraceSortRounds, OddBlockCountCarriesTrailer) {
  // 3 blocks: the unpaired third is copied; the trace must not crash and
  // must touch every element.
  const auto values = make_unsorted_values(3000, 47);
  CacheConfig cc;
  cc.size_bytes = 32 * 1024;
  cc.associativity = 8;
  Cache cache(cc);
  const MergeLayout layout{0, 0, 1 << 24};
  const auto result = trace_sort_rounds(values, 4, 1024, 0, layout, cache);
  EXPECT_GT(result.stats.reads, 2u * 3000u);  // >= two rounds of reads
}

}  // namespace
}  // namespace mp::cachesim
