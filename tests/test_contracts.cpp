// Contract tests: MP_CHECK violations at public API boundaries must abort
// loudly (death tests), and documented preconditions hold exactly at their
// boundaries (no off-by-one acceptance or rejection).

#include <gtest/gtest.h>

#include "cachesim/cache.hpp"
#include "core/mergepath.hpp"
#include "extmem/external_sort.hpp"
#include "util/cli.hpp"

namespace mp {
namespace {

using CheckDeath = ::testing::Test;

TEST(Contracts, PartitionRejectsZeroParts) {
  const std::vector<std::int32_t> a{1}, b{2};
  EXPECT_DEATH(partition_merge_path(a.data(), 1, b.data(), 1,
                                    std::size_t{0}),
               "check failed");
}

TEST(Contracts, KthSmallestRejectsOutOfRangeRank) {
  const std::vector<std::int32_t> a{1}, b{2};
  EXPECT_DEATH(kth_smallest(a.data(), 1, b.data(), 1, 2), "check failed");
  // Boundary: rank == m + n - 1 is the last valid one.
  EXPECT_EQ(kth_smallest(a.data(), 1, b.data(), 1, 1), 2);
}

TEST(Contracts, MergeFirstKRejectsOversizedK) {
  const std::vector<std::int32_t> a{1}, b{2};
  std::vector<std::int32_t> out(3);
  EXPECT_DEATH(merge_first_k(a.data(), 1, b.data(), 1, out.data(), 3),
               "check failed");
  merge_first_k(a.data(), 1, b.data(), 1, out.data(), 2);  // boundary OK
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 2);
}

TEST(Contracts, InstrumentSpanMustCoverLanes) {
  const std::vector<std::int32_t> a{1, 2, 3, 4}, b{5, 6, 7, 8};
  std::vector<std::int32_t> out(8);
  std::vector<OpCounts> too_few(2);
  ThreadPool serial(0);
  EXPECT_DEATH(parallel_merge(a.data(), 4, b.data(), 4, out.data(),
                              Executor{&serial, 4}, std::less<>{},
                              std::span<OpCounts>(too_few)),
               "check failed");
}

TEST(Contracts, StreamMergerRejectsPushAfterClose) {
  StreamMerger<std::int32_t> merger;
  merger.close_a();
  const std::vector<std::int32_t> chunk{1};
  EXPECT_DEATH(merger.push_a(std::span<const std::int32_t>(chunk)),
               "check failed");
}

TEST(Contracts, CacheRejectsInvalidGeometry) {
  cachesim::CacheConfig config;
  config.size_bytes = 1000;  // not a multiple of line*assoc
  config.line_bytes = 64;
  config.associativity = 4;
  EXPECT_DEATH(cachesim::Cache cache(config), "check failed");
}

TEST(Contracts, BlockDeviceRejectsUnwrittenRead) {
  extmem::BlockDevice device;
  const std::uint64_t block = device.allocate(1);
  std::uint8_t buf[8];
  EXPECT_DEATH(device.read_block(block, buf, 8), "check failed");
  EXPECT_DEATH(device.read_block(block + 1, buf, 8), "check failed");
}

TEST(Contracts, ExternalSortRequiresTwoBlocksOfMemory) {
  extmem::BlockDevice device;  // 64 KiB blocks = 16Ki int32
  extmem::ExternalSortConfig config;
  config.memory_elems = 1000;  // less than two blocks
  const std::vector<std::int32_t> data{3, 1, 2};
  EXPECT_DEATH(extmem::external_sort_vector(device, data, config),
               "check failed");
}

TEST(Contracts, SegmentedConfigDegenerateCacheStillWorks) {
  // Documented behaviour, not death: a cache too small for 3 elements
  // clamps L to 1 and the merge still completes.
  SegmentedConfig config;
  config.cache_bytes = 8;  // 2 int32 elements => L clamps to 1
  EXPECT_EQ(config.resolve_segment_length<std::int32_t>(), 1u);
  const std::vector<std::int32_t> a{1, 3}, b{2, 4};
  std::vector<std::int32_t> out(4);
  segmented_parallel_merge(a.data(), 2, b.data(), 2, out.data(), config);
  EXPECT_EQ(out, (std::vector<std::int32_t>{1, 2, 3, 4}));
}

TEST(Contracts, CliErrorsAreReportedNotFatal) {
  const char* argv[] = {"prog", "stray"};
  Cli cli(2, argv);
  EXPECT_FALSE(cli.ok());
  EXPECT_FALSE(cli.error().empty());
}

}  // namespace
}  // namespace mp
