// Tests for the workload generators: every distribution yields sorted
// arrays of the requested sizes, deterministically in the seed, with the
// structural property its name promises.

#include "util/data_gen.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

namespace mp {
namespace {

class DistShape : public ::testing::TestWithParam<Dist> {};

TEST_P(DistShape, SortedExactSizesAndDeterministic) {
  const Dist dist = GetParam();
  for (const auto& [m, n] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {0, 0}, {1, 0}, {0, 1}, {100, 100}, {1000, 17}, {17, 1000}}) {
    const auto x = make_merge_input(dist, m, n, 99);
    EXPECT_EQ(x.a.size(), m);
    EXPECT_EQ(x.b.size(), n);
    EXPECT_TRUE(std::is_sorted(x.a.begin(), x.a.end()));
    EXPECT_TRUE(std::is_sorted(x.b.begin(), x.b.end()));
    const auto y = make_merge_input(dist, m, n, 99);
    EXPECT_EQ(x.a, y.a);
    EXPECT_EQ(x.b, y.b);
    const auto z = make_merge_input(dist, m, n, 100);
    if (m * n > 100 && dist != Dist::kAllEqual &&
        dist != Dist::kInterleaved && dist != Dist::kOrganPipe) {
      EXPECT_TRUE(x.a != z.a || x.b != z.b) << "seed must matter";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDists, DistShape, ::testing::ValuesIn(kAllDists),
                         [](const auto& pinfo) {
                           return to_string(pinfo.param);
                         });

TEST(DataGen, DisjointShapesAreActuallyDisjoint) {
  const auto low = make_merge_input(Dist::kDisjointLow, 500, 500, 3);
  EXPECT_LT(low.a.back(), low.b.front());
  const auto high = make_merge_input(Dist::kDisjointHigh, 500, 500, 3);
  EXPECT_GT(high.a.front(), high.b.back());
}

TEST(DataGen, InterleavedAlternatesStrictly) {
  const auto x = make_merge_input(Dist::kInterleaved, 100, 100, 3);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(x.a[i], static_cast<std::int32_t>(2 * i));
    EXPECT_EQ(x.b[i], static_cast<std::int32_t>(2 * i + 1));
  }
}

TEST(DataGen, AllEqualIsConstant) {
  const auto x = make_merge_input(Dist::kAllEqual, 50, 60, 3);
  for (auto v : x.a) EXPECT_EQ(v, 42);
  for (auto v : x.b) EXPECT_EQ(v, 42);
}

TEST(DataGen, FewDuplicatesHasSmallUniverse) {
  const auto x = make_merge_input(Dist::kFewDuplicates, 10000, 10000, 5);
  std::unordered_set<std::int32_t> distinct(x.a.begin(), x.a.end());
  distinct.insert(x.b.begin(), x.b.end());
  EXPECT_LT(distinct.size(), 1000u);
}

TEST(DataGen, ParseDistRoundTrips) {
  for (Dist d : kAllDists) {
    Dist parsed;
    ASSERT_TRUE(parse_dist(to_string(d), parsed));
    EXPECT_EQ(parsed, d);
  }
  Dist sink;
  EXPECT_FALSE(parse_dist("no_such_dist", sink));
}

TEST(DataGen, UnsortedValuesAreUnsortedAndDeterministic) {
  const auto v = make_unsorted_values(10000, 7);
  EXPECT_EQ(v.size(), 10000u);
  EXPECT_FALSE(std::is_sorted(v.begin(), v.end()));
  EXPECT_EQ(v, make_unsorted_values(10000, 7));
}

TEST(DataGen, ZipfValuesAreSortedSkewedAndDeterministic) {
  const auto v = make_zipf_values(50000, 10000, 1.1, 5);
  EXPECT_EQ(v.size(), 50000u);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  EXPECT_EQ(v, make_zipf_values(50000, 10000, 1.1, 5));
  // Skew: rank 0 (the most frequent key) dominates — with exponent 1.1
  // over a 10k universe it should hold several percent of the mass, far
  // above the uniform 1/10000.
  const auto rank0 = static_cast<std::size_t>(
      std::count(v.begin(), v.end(), 0));
  EXPECT_GT(rank0, v.size() / 100);
  // All values within the universe.
  EXPECT_GE(v.front(), 0);
  EXPECT_LT(v.back(), 10000);
}

TEST(DataGen, ZipfHigherExponentIsMoreSkewed) {
  const auto mild = make_zipf_values(30000, 1000, 0.8, 7);
  const auto steep = make_zipf_values(30000, 1000, 2.0, 7);
  const auto head = [](const std::vector<std::int32_t>& v) {
    return static_cast<std::size_t>(std::count(v.begin(), v.end(), 0));
  };
  EXPECT_GT(head(steep), 2 * head(mild));
}

TEST(DataGen, KeyedInputEncodesOriginAndPosition) {
  const auto x = make_keyed_input(100, 100, 10, 9);
  EXPECT_TRUE(std::is_sorted(x.a.begin(), x.a.end()));
  EXPECT_TRUE(std::is_sorted(x.b.begin(), x.b.end()));
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(x.a[i].payload, (0u << 28) | i);
    EXPECT_EQ(x.b[i].payload, (1u << 28) | i);
    EXPECT_LT(x.a[i].key, 10);
    EXPECT_GE(x.a[i].key, 0);
  }
}

}  // namespace
}  // namespace mp
