// Tests for the distributed-memory substrate (S21): network accounting,
// all three distributed merge algorithms' correctness, and the traffic
// relationships E16 is about (merge-path exchange: one data round,
// balanced receives, <= N total; tree: ~N/2·log p; gather: root hotspot).

#include "dist/distributed_merge.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_support.hpp"
#include "util/data_gen.hpp"
#include "util/rng.hpp"

namespace mp::dist {
namespace {

TEST(RankNetwork, AlphaBetaAccounting) {
  NetConfig config;
  config.alpha_us = 5.0;
  config.beta_bytes_per_us = 100.0;
  RankNetwork net(3, config);
  net.send(0, 1, 1000);  // 5 + 10 = 15us on both ports
  net.send(2, 1, 200);   // 5 + 2 = 7us; rank 1 recv port now 22us
  net.end_round();
  const NetStats stats = net.stats();
  EXPECT_EQ(stats.messages, 2u);
  EXPECT_EQ(stats.bytes, 1200u);
  EXPECT_EQ(stats.rounds, 1u);
  EXPECT_DOUBLE_EQ(stats.modeled_time_us, 22.0);  // rank 1's recv port
  EXPECT_EQ(stats.max_rank_recv_bytes, 1200u);
}

TEST(RankNetwork, SelfSendsAreFree) {
  RankNetwork net(2);
  net.send(1, 1, 1 << 20);
  net.end_round();
  EXPECT_EQ(net.stats().messages, 0u);
  EXPECT_EQ(net.stats().bytes, 0u);
}

class DistributedMerge
    : public ::testing::TestWithParam<std::tuple<Dist, unsigned>> {};

TEST_P(DistributedMerge, AllThreeAlgorithmsProduceTheMerge) {
  const auto [dist, ranks] = GetParam();
  const auto input = make_merge_input(dist, 5000, 4000, 1700);
  const auto expected = test::reference_merge(input.a, input.b);
  const DistArray da = distribute(input.a, ranks);
  const DistArray db = distribute(input.b, ranks);

  EXPECT_EQ(merge_path_exchange(da, db).merged.gathered(), expected);
  EXPECT_EQ(tree_merge(da, db).merged.gathered(), expected);
  EXPECT_EQ(gather_at_root(da, db).merged.gathered(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    DistsAndRanks, DistributedMerge,
    ::testing::Combine(::testing::Values(Dist::kUniform, Dist::kDisjointLow,
                                         Dist::kAllEqual, Dist::kClustered),
                       ::testing::Values(1u, 2u, 3u, 8u, 13u)),
    [](const auto& pinfo) {
      return to_string(std::get<0>(pinfo.param)) + "_r" +
             std::to_string(std::get<1>(pinfo.param));
    });

TEST(DistributedMerge, MergePathExchangeMovesAtMostNPlusProbes) {
  const auto input = make_merge_input(Dist::kUniform, 40000, 40000, 1701);
  const DistArray da = distribute(input.a, 8);
  const DistArray db = distribute(input.b, 8);
  const auto result = merge_path_exchange(da, db);
  const std::uint64_t n_bytes = 80000ull * 4;
  // Data volume <= N elements (fragments that are already local are free)
  // plus the tiny probe round.
  EXPECT_LE(result.net.bytes, n_bytes + 8 * 2 * 20 * 16);
  // Exactly two rounds: probes, then the one personalized exchange.
  EXPECT_EQ(result.net.rounds, 2u);
  // Balanced receives: no rank receives more than ~N/p + probe slack.
  EXPECT_LE(result.net.max_rank_recv_bytes, n_bytes / 8 + 4096);
}

TEST(DistributedMerge, TreeMovesMoreAndConcentrates) {
  const auto input = make_merge_input(Dist::kUniform, 40000, 40000, 1703);
  const DistArray da = distribute(input.a, 8);
  const DistArray db = distribute(input.b, 8);
  const auto path = merge_path_exchange(da, db);
  const auto tree = tree_merge(da, db);
  const auto gather = gather_at_root(da, db);

  // Tree: ~ (N/2)·log2(8) + scatter N ≈ 2.3N vs path's <= ~0.9N.
  EXPECT_GT(tree.net.bytes, 2 * path.net.bytes);
  // Gather: 2N total with an N-byte hotspot at the root.
  EXPECT_GE(gather.net.max_rank_recv_bytes, 80000ull * 4 * 7 / 8);
  EXPECT_GT(gather.net.max_rank_recv_bytes,
            3 * path.net.max_rank_recv_bytes);
  // And the modelled time ordering follows.
  EXPECT_LT(path.net.modeled_time_us, tree.net.modeled_time_us);
  EXPECT_LT(path.net.modeled_time_us, gather.net.modeled_time_us);
}

TEST(DistributedSort, SortsAndBalancesOutput) {
  for (unsigned ranks : {1u, 2u, 5u, 12u}) {
    const auto values = make_unsorted_values(30000, 1705 + ranks);
    auto expected = values;
    std::sort(expected.begin(), expected.end());
    const DistArray d = distribute(values, ranks);
    const auto result = distributed_sort(d);
    EXPECT_EQ(result.merged.gathered(), expected) << "ranks=" << ranks;
    // Output shards balanced exactly (by construction of the splitters).
    for (const auto& shard : result.merged.shards) {
      EXPECT_GE(shard.size(), 30000u / ranks);
      EXPECT_LE(shard.size(), 30000u / ranks + 1);
    }
    // Data traffic bounded by N bytes; the splitter protocol adds
    // 32 rounds of 16-byte pivot/count exchanges (2*32*16*p*(p-1) bytes).
    const std::uint64_t protocol =
        ranks == 1 ? 0 : 2ull * 32 * 8 * ranks * (ranks - 1);
    EXPECT_LE(result.net.bytes, 30000ull * 4 + protocol);
    EXPECT_EQ(result.net.rounds, ranks == 1 ? 0u : 33u);
  }
}

TEST(DistributedSort, DuplicateHeavyInput) {
  std::vector<std::int32_t> values(20000);
  Xoshiro256 rng(1707);
  for (auto& v : values) v = static_cast<std::int32_t>(rng.bounded(5));
  auto expected = values;
  std::sort(expected.begin(), expected.end());
  const auto result = distributed_sort(distribute(values, 8));
  EXPECT_EQ(result.merged.gathered(), expected);
}

TEST(Distribute, RoundTripsAndBalances) {
  const auto values = make_uniform_values(1000, 5);
  const DistArray d = distribute(values, 7);
  EXPECT_EQ(d.gathered(), values);
  for (const auto& shard : d.shards) {
    EXPECT_GE(shard.size(), 1000u / 7);
    EXPECT_LE(shard.size(), 1000u / 7 + 1);
  }
}

}  // namespace
}  // namespace mp::dist
