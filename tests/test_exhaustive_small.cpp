// Exhaustive small-case verification: EVERY pair of sorted arrays of
// length 0..4 over the alphabet {0,1,2} (each array is a multiset, so
// there are sum_{m=0..4} C(m+2,2) = 1+3+6+10+15 = 35 arrays, 35*35 = 1225
// ordered pairs), run through every merge implementation and checked
// against std::merge. Small alphabets maximise ties; small sizes hit every
// degenerate branch (empty sides, single elements, all-equal, complete
// containment). This is as close to a proof by cases as a test gets.

#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/baselines.hpp"
#include "core/mergepath.hpp"
#include "test_support.hpp"

namespace mp {
namespace {

// All sorted arrays over {0..alphabet-1} with exactly `len` elements.
void enumerate_sorted(std::size_t len, std::int32_t alphabet,
                      std::vector<std::vector<std::int32_t>>& out) {
  std::vector<std::int32_t> current(len, 0);
  // Non-decreasing sequences == combinations with repetition.
  auto rec = [&](auto&& self, std::size_t pos, std::int32_t min_v) -> void {
    if (pos == len) {
      out.push_back(current);
      return;
    }
    for (std::int32_t v = min_v; v < alphabet; ++v) {
      current[pos] = v;
      self(self, pos + 1, v);
    }
  };
  rec(rec, 0, 0);
}

class ExhaustiveSmall : public ::testing::Test {
 protected:
  static std::vector<std::vector<std::int32_t>> all_arrays() {
    std::vector<std::vector<std::int32_t>> arrays;
    for (std::size_t len = 0; len <= 4; ++len)
      enumerate_sorted(len, 3, arrays);
    return arrays;
  }
};

TEST_F(ExhaustiveSmall, EveryMergeImplementationOnEveryPair) {
  const auto arrays = all_arrays();
  ASSERT_EQ(arrays.size(), 35u);
  ThreadPool pool(2);
  const Executor exec{&pool, 3};

  std::size_t pairs = 0;
  for (const auto& a : arrays) {
    for (const auto& b : arrays) {
      ++pairs;
      const auto expected = test::reference_merge(a, b);
      const std::size_t m = a.size(), n = b.size();
      std::vector<std::int32_t> out(m + n);

      parallel_merge(a.data(), m, b.data(), n, out.data(), exec);
      ASSERT_EQ(out, expected) << "parallel_merge";

      std::fill(out.begin(), out.end(), -9);
      SegmentedConfig seg;
      seg.segment_length = 2;
      segmented_parallel_merge(a.data(), m, b.data(), n, out.data(), seg,
                               exec);
      ASSERT_EQ(out, expected) << "segmented";

      std::fill(out.begin(), out.end(), -9);
      tiled_parallel_merge(a.data(), m, b.data(), n, out.data(), 3, exec);
      ASSERT_EQ(out, expected) << "tiled";

      std::fill(out.begin(), out.end(), -9);
      adaptive_merge(a.data(), m, b.data(), n, out.data());
      ASSERT_EQ(out, expected) << "adaptive";

      ASSERT_EQ(baselines::shiloach_vishkin_merge(a, b, exec), expected);
      ASSERT_EQ(baselines::akl_santoro_merge(a, b, exec), expected);
      ASSERT_EQ(baselines::deo_sarkar_merge(a, b, exec), expected);
      ASSERT_EQ(baselines::bitonic_merge(a, b, exec), expected);

      // Verification oracles agree on the genuine output...
      ASSERT_TRUE(is_merge_of(a.data(), m, b.data(), n, expected.data()));
      ASSERT_TRUE(
          is_stable_merge_of(a.data(), m, b.data(), n, expected.data()));
    }
  }
  EXPECT_EQ(pairs, 35u * 35u);
}

TEST_F(ExhaustiveSmall, EveryDiagonalOfEveryPairMatchesTheMatrixModel) {
  const auto arrays = all_arrays();
  for (const auto& a : arrays) {
    for (const auto& b : arrays) {
      const MergeMatrix<std::int32_t> matrix(a, b);
      const auto path = matrix.build_path();
      for (std::size_t d = 0; d <= a.size() + b.size(); ++d) {
        ASSERT_EQ(path_point_on_diagonal(a.data(), a.size(), b.data(),
                                         b.size(), d),
                  path[d]);
        // Hinted search with every possible hint.
        for (std::size_t hint = 0; hint <= a.size(); ++hint) {
          ASSERT_EQ(diagonal_intersection_hinted(a.data(), a.size(),
                                                 b.data(), b.size(), d,
                                                 hint),
                    path[d].i);
        }
      }
    }
  }
}

TEST_F(ExhaustiveSmall, SetOperationsOnEveryPair) {
  const auto arrays = all_arrays();
  const Executor exec{nullptr, 3};
  for (const auto& a : arrays) {
    for (const auto& b : arrays) {
      std::vector<std::int32_t> expected;
      std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                     std::back_inserter(expected));
      ASSERT_EQ(parallel_set_union(a, b, exec), expected);
      expected.clear();
      std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                            std::back_inserter(expected));
      ASSERT_EQ(parallel_set_intersection(a, b, exec), expected);
      expected.clear();
      std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(expected));
      ASSERT_EQ(parallel_set_difference(a, b, exec), expected);
      expected.clear();
      std::set_symmetric_difference(a.begin(), a.end(), b.begin(), b.end(),
                                    std::back_inserter(expected));
      ASSERT_EQ(parallel_set_symmetric_difference(a, b, exec), expected);
    }
  }
}

TEST_F(ExhaustiveSmall, KthSmallestAndFirstKOnEveryPair) {
  const auto arrays = all_arrays();
  for (const auto& a : arrays) {
    for (const auto& b : arrays) {
      const auto expected = test::reference_merge(a, b);
      for (std::size_t k = 0; k <= expected.size(); ++k) {
        std::vector<std::int32_t> out(k);
        merge_first_k(a.data(), a.size(), b.data(), b.size(), out.data(),
                      k);
        ASSERT_TRUE(std::equal(out.begin(), out.end(), expected.begin()));
        if (k < expected.size()) {
          ASSERT_EQ(
              kth_smallest(a.data(), a.size(), b.data(), b.size(), k),
              expected[k]);
        }
      }
    }
  }
}

}  // namespace
}  // namespace mp
