// Tests for the external-memory substrate (S17): device mechanics, run
// writer/reader round-trips, external sort correctness and stability, and
// the Aggarwal-Vitter transfer-count bound.

#include "extmem/external_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "extmem/block_device.hpp"
#include "extmem/run_file.hpp"
#include "util/data_gen.hpp"
#include "util/rng.hpp"

namespace mp::extmem {
namespace {

DeviceConfig small_blocks() {
  DeviceConfig config;
  config.block_bytes = 1024;  // 256 int32 per block
  return config;
}

TEST(BlockDevice, WriteReadRoundTrip) {
  BlockDevice device(small_blocks());
  const std::uint64_t first = device.allocate(2);
  std::vector<std::int32_t> data(256);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::int32_t>(i * 3);
  device.write_block(first, data.data(), 1024);
  std::vector<std::int32_t> back(256);
  device.read_block(first, back.data(), 1024);
  EXPECT_EQ(back, data);
  EXPECT_EQ(device.stats().block_writes, 1u);
  EXPECT_EQ(device.stats().block_reads, 1u);
}

TEST(BlockDevice, SeekAccountingDistinguishesSequentialAccess) {
  BlockDevice device(small_blocks());
  const std::uint64_t first = device.allocate(10);
  std::vector<std::uint8_t> zeros(1024, 0);
  for (std::uint64_t b = 0; b < 10; ++b)
    device.write_block(first + b, zeros.data(), 1024);
  // First access seeks; the other nine are sequential.
  EXPECT_EQ(device.stats().seeks, 1u);
  device.read_block(first + 5, zeros.data(), 1024);  // jump back: a seek
  device.read_block(first + 6, zeros.data(), 1024);  // sequential
  EXPECT_EQ(device.stats().seeks, 2u);
  EXPECT_GT(device.modeled_io_us(), 0.0);
}

TEST(RunFile, WriterReaderRoundTripAcrossBlocks) {
  BlockDevice device(small_blocks());
  RunWriter<std::int32_t> writer(device);
  const auto values = make_uniform_values(1000, 3);  // ~4 blocks
  writer.append(values.data(), values.size());
  const RunHandle run = writer.finish();
  EXPECT_EQ(run.element_count, 1000u);

  RunReader<std::int32_t> reader(device, run);
  std::vector<std::int32_t> back;
  while (!reader.empty()) back.push_back(reader.next());
  EXPECT_EQ(back, values);
}

TEST(RunFile, WriterIsReusableAfterFinish) {
  BlockDevice device(small_blocks());
  RunWriter<std::int32_t> writer(device);
  writer.append(1);
  const RunHandle r1 = writer.finish();
  writer.append(2);
  writer.append(3);
  const RunHandle r2 = writer.finish();
  RunReader<std::int32_t> read1(device, r1), read2(device, r2);
  EXPECT_EQ(read1.next(), 1);
  EXPECT_TRUE(read1.empty());
  EXPECT_EQ(read2.next(), 2);
  EXPECT_EQ(read2.next(), 3);
}

TEST(RunFile, PeekDoesNotConsume) {
  BlockDevice device(small_blocks());
  RunWriter<std::int32_t> writer(device);
  writer.append(42);
  RunReader<std::int32_t> reader(device, writer.finish());
  EXPECT_EQ(reader.peek(), 42);
  EXPECT_EQ(reader.peek(), 42);
  EXPECT_EQ(reader.remaining(), 1u);
  EXPECT_EQ(reader.next(), 42);
  EXPECT_TRUE(reader.empty());
}

class ExternalSortParam
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(ExternalSortParam, SortsCorrectly) {
  const auto [n, memory] = GetParam();
  BlockDevice device(small_blocks());
  const auto data = make_unsorted_values(n, 900 + n);
  auto expected = data;
  std::sort(expected.begin(), expected.end());

  ExternalSortConfig config;
  config.memory_elems = memory;
  ExternalSortReport report;
  const auto sorted = external_sort_vector(device, data, config, &report);
  EXPECT_EQ(sorted, expected);
  if (n > memory) {
    EXPECT_GT(report.initial_runs, 1u);
  }
  if (report.initial_runs > 1) {
    EXPECT_GE(report.merge_passes, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndMemory, ExternalSortParam,
    ::testing::Combine(::testing::Values(std::size_t{0}, std::size_t{100},
                                         std::size_t{10000},
                                         std::size_t{100000}),
                       ::testing::Values(std::size_t{512},
                                         std::size_t{4096})),
    [](const auto& pinfo) {
      return "n" + std::to_string(std::get<0>(pinfo.param)) + "_M" +
             std::to_string(std::get<1>(pinfo.param));
    });

TEST(ExternalSort, StableAcrossRunsAndPasses) {
  BlockDevice device(small_blocks());
  Xoshiro256 rng(17);
  std::vector<KeyedRecord> data(20000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i].key = static_cast<std::int32_t>(rng.bounded(50));
    data[i].payload = static_cast<std::uint32_t>(i);
  }
  auto expected = data;
  std::stable_sort(expected.begin(), expected.end());

  ExternalSortConfig config;
  config.memory_elems = 1024;  // many runs, several passes
  config.fan_in = 3;
  const auto sorted = external_sort_vector(device, data, config);
  EXPECT_EQ(sorted, expected);
}

TEST(ExternalSort, TransferCountMeetsAggarwalVitterBound) {
  // N/B · (1 + passes) * 2-ish transfers; passes = ceil(log_k(runs)).
  BlockDevice device(small_blocks());
  const std::size_t n = 200000;  // ~782 blocks
  const auto data = make_unsorted_values(n, 23);

  ExternalSortConfig config;
  config.memory_elems = 2048;  // 8 blocks of memory => fan-in 7
  ExternalSortReport report;
  const auto sorted = external_sort_vector(device, data, config, &report);
  ASSERT_EQ(sorted.size(), n);

  const double blocks = std::ceil(static_cast<double>(n) / 256.0);
  const double runs = std::ceil(static_cast<double>(n) / 2048.0);
  const double passes =
      std::ceil(std::log(runs) / std::log(static_cast<double>(report.fan_in)));
  EXPECT_EQ(report.fan_in, 7u);
  EXPECT_EQ(static_cast<double>(report.merge_passes), passes);
  // Each pass reads + writes every block once; run formation likewise; the
  // vector round-trip adds one more write+read of the input. Allow the
  // per-run partial-block slack.
  const double bound = 2.0 * blocks * (passes + 1.0) + 2.0 * runs + 4.0;
  EXPECT_LE(static_cast<double>(report.io.transfers()), bound)
      << "reads=" << report.io.block_reads
      << " writes=" << report.io.block_writes;
  EXPECT_GT(report.modeled_io_us, 0.0);
}

TEST(ExternalSort, LargerFanInMeansFewerPasses) {
  const auto data = make_unsorted_values(100000, 29);
  std::size_t passes_small = 0, passes_large = 0;
  {
    BlockDevice device(small_blocks());
    ExternalSortConfig config;
    config.memory_elems = 1024;
    config.fan_in = 2;
    ExternalSortReport report;
    external_sort_vector(device, data, config, &report);
    passes_small = report.merge_passes;
  }
  {
    BlockDevice device(small_blocks());
    ExternalSortConfig config;
    config.memory_elems = 1024;
    config.fan_in = 16;
    ExternalSortReport report;
    external_sort_vector(device, data, config, &report);
    passes_large = report.merge_passes;
  }
  EXPECT_GT(passes_small, passes_large);
}

}  // namespace
}  // namespace mp::extmem
