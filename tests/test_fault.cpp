// Tests for the fault-injection layer (S23): plan determinism and
// scripting, the device injectors (transient/short/latency/ENOSPC) with
// the run-file retry loops, block release accounting, and the network
// injectors (drop/duplicate/reorder/partition) with reliable_send's
// recovery protocol. The randomized end-to-end sweeps live in
// tests/property/test_property_faults.cpp.

#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <vector>

#include "core/mergepath.hpp"
#include "dist/distributed_merge.hpp"
#include "dist/netsim.hpp"
#include "extmem/block_device.hpp"
#include "extmem/external_sort.hpp"
#include "extmem/run_file.hpp"
#include "test_support.hpp"
#include "util/data_gen.hpp"

namespace mp::fault {
namespace {

TEST(FaultPlan, DefaultConstructedPlanIsInert) {
  FaultPlan plan;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(plan.decide(OpClass::kRead), FaultKind::kNone);
    EXPECT_EQ(plan.decide_send(0, 1), FaultKind::kNone);
  }
  EXPECT_EQ(plan.stats().injected, 0u);
  EXPECT_EQ(plan.stats().decisions, 200u);
}

TEST(FaultPlan, ZeroRateSeededPlanNeverFires) {
  FaultPlan plan(FaultConfig{42, 0.0, 250.0});
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(plan.decide(OpClass::kWrite), FaultKind::kNone);
  EXPECT_EQ(plan.stats().injected, 0u);
}

TEST(FaultPlan, SameSeedSameSchedule) {
  const FaultConfig config{1234, 0.3, 250.0};
  FaultPlan x(config), y(config);
  for (int i = 0; i < 500; ++i) {
    const auto op = static_cast<OpClass>(i % 3);  // read/write/allocate
    ASSERT_EQ(x.decide(op), y.decide(op)) << "diverged at op " << i;
  }
  for (int i = 0; i < 500; ++i)
    ASSERT_EQ(x.decide_send(i % 4, (i + 1) % 4), y.decide_send(i % 4, (i + 1) % 4));
  EXPECT_EQ(x.schedule_hash(), y.schedule_hash());
  EXPECT_TRUE(x.stats() == y.stats());
  EXPECT_GT(x.stats().injected, 0u);  // 30% over 1000 ops must fire
}

TEST(FaultPlan, DifferentSeedsDiverge) {
  FaultPlan x(FaultConfig{1, 0.5, 250.0});
  FaultPlan y(FaultConfig{2, 0.5, 250.0});
  for (int i = 0; i < 200; ++i) {
    x.decide(OpClass::kRead);
    y.decide(OpClass::kRead);
  }
  EXPECT_NE(x.schedule_hash(), y.schedule_hash());
}

TEST(FaultPlan, ScriptedOpFailsExactlyAtIndex) {
  FaultPlan plan;
  plan.fail_op(3, FaultKind::kMedia);
  EXPECT_EQ(plan.decide(OpClass::kRead), FaultKind::kNone);  // op 0
  EXPECT_EQ(plan.decide(OpClass::kRead), FaultKind::kNone);  // op 1
  EXPECT_EQ(plan.decide(OpClass::kRead), FaultKind::kNone);  // op 2
  EXPECT_EQ(plan.decide(OpClass::kRead), FaultKind::kMedia); // op 3
  EXPECT_EQ(plan.decide(OpClass::kRead), FaultKind::kNone);  // op 4
  EXPECT_EQ(plan.stats().count(FaultKind::kMedia), 1u);
}

TEST(FaultPlan, FailFromMakesEveryLaterOpFail) {
  FaultPlan plan;
  plan.fail_from(2, FaultKind::kNoSpace);
  EXPECT_EQ(plan.decide(OpClass::kAllocate), FaultKind::kNone);
  EXPECT_EQ(plan.decide(OpClass::kAllocate), FaultKind::kNone);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(plan.decide(OpClass::kAllocate), FaultKind::kNoSpace);
}

TEST(FaultPlan, PartitionWindowCoversScriptedOpsOnly) {
  FaultPlan plan;
  plan.partition_link(0, 1, 2, 3);  // ops 2..4 on link 0->1
  EXPECT_EQ(plan.decide_send(0, 1), FaultKind::kNone);      // op 0
  EXPECT_EQ(plan.decide_send(1, 0), FaultKind::kNone);      // op 1, reverse
  EXPECT_EQ(plan.decide_send(0, 1), FaultKind::kPartition); // op 2
  EXPECT_EQ(plan.decide_send(1, 0), FaultKind::kNone);      // op 3, reverse
  EXPECT_EQ(plan.decide_send(0, 1), FaultKind::kPartition); // op 4
  EXPECT_EQ(plan.decide_send(0, 1), FaultKind::kNone);      // op 5: window over
}

TEST(FaultPlan, ForeverPartitionNeverHeals) {
  FaultPlan plan;
  plan.partition_link(2, 3, 0);  // length 0 = forever
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(plan.decide_send(2, 3), FaultKind::kPartition);
}

TEST(ScopedInjector, AttachesAndDetaches) {
  extmem::BlockDevice device;
  FaultPlan plan;
  EXPECT_EQ(device.fault_plan(), nullptr);
  {
    ScopedInjector injector(device, plan);
    if (kFaultCompiledIn) {
      EXPECT_EQ(device.fault_plan(), &plan);
    } else {
      EXPECT_EQ(device.fault_plan(), nullptr);
    }
  }
  EXPECT_EQ(device.fault_plan(), nullptr);
}

}  // namespace
}  // namespace mp::fault

namespace mp::extmem {
namespace {

DeviceConfig small_blocks() {
  DeviceConfig config;
  config.block_bytes = 1024;  // 256 int32 per block
  return config;
}

TEST(DeviceFaults, TransientWriteReportsInterrupted) {
  if (!fault::kFaultCompiledIn) GTEST_SKIP() << "MP_FAULT=0 build";
  BlockDevice device(small_blocks());
  fault::FaultPlan plan;
  plan.fail_op(1, fault::FaultKind::kTransient);  // op 0 is the allocate
  fault::ScopedInjector injector(device, plan);
  const std::uint64_t block = device.allocate(1);
  std::vector<std::int32_t> data(256, 7);
  EXPECT_EQ(device.try_write_block(block, data.data(), 1024),
            IoStatus::kInterrupted);
  EXPECT_EQ(device.stats().block_writes, 0u);  // failed attempt not counted
  EXPECT_EQ(device.stats().faults_injected, 1u);
  EXPECT_EQ(device.try_write_block(block, data.data(), 1024), IoStatus::kOk);
  EXPECT_EQ(device.stats().block_writes, 1u);
}

TEST(DeviceFaults, ShortWriteLeavesBlockUnreadable) {
  if (!fault::kFaultCompiledIn) GTEST_SKIP() << "MP_FAULT=0 build";
  BlockDevice device(small_blocks());
  std::vector<std::int32_t> data(256, 9);
  const std::uint64_t block = device.allocate(1);
  device.write_block(block, data.data(), 1024);  // block is live
  EXPECT_EQ(device.live_blocks(), 1u);

  fault::FaultPlan plan;
  plan.fail_op(0, fault::FaultKind::kShort);
  {
    fault::ScopedInjector injector(device, plan);
    EXPECT_EQ(device.try_write_block(block, data.data(), 1024),
              IoStatus::kShortTransfer);
  }
  // The torn write destroyed the block's durable state.
  EXPECT_EQ(device.live_blocks(), 0u);
  EXPECT_EQ(device.stats().short_transfers, 1u);
  device.write_block(block, data.data(), 1024);  // plan detached: succeeds
  EXPECT_EQ(device.live_blocks(), 1u);
}

TEST(DeviceFaults, InjectedLatencyChargesModeledTime) {
  if (!fault::kFaultCompiledIn) GTEST_SKIP() << "MP_FAULT=0 build";
  BlockDevice device(small_blocks());
  const std::uint64_t block = device.allocate(1);
  std::vector<std::int32_t> data(256, 1);
  device.write_block(block, data.data(), 1024);
  const double before = device.modeled_io_us();

  fault::FaultPlan plan(fault::FaultConfig{0, 0.0, 500.0});
  plan.fail_op(0, fault::FaultKind::kLatency);
  fault::ScopedInjector injector(device, plan);
  std::vector<std::int32_t> back(256);
  // kLatency: the op succeeds, it just costs extra modeled time.
  EXPECT_EQ(device.try_read_block(block, back.data(), 1024), IoStatus::kOk);
  EXPECT_EQ(back, data);
  EXPECT_GE(device.modeled_io_us() - before, 500.0);
}

TEST(DeviceFaults, CapacityExhaustionThrowsTypedNoSpace) {
  DeviceConfig config = small_blocks();
  config.max_blocks = 4;
  BlockDevice device(config);
  EXPECT_EQ(device.allocate(4), 0u);
  try {
    device.allocate(1);
    FAIL() << "allocate past max_blocks must throw";
  } catch (const IoError& error) {
    EXPECT_EQ(error.status(), IoStatus::kNoSpace);
    EXPECT_EQ(error.kind(), fault::FaultKind::kNoSpace);
  }
}

TEST(DeviceFaults, ScriptedEnospcThrowsFromAllocate) {
  if (!fault::kFaultCompiledIn) GTEST_SKIP() << "MP_FAULT=0 build";
  BlockDevice device(small_blocks());
  fault::FaultPlan plan;
  plan.fail_op(0, fault::FaultKind::kNoSpace);
  fault::ScopedInjector injector(device, plan);
  EXPECT_THROW(device.allocate(1), IoError);
  EXPECT_EQ(device.blocks_allocated(), 0u);
}

TEST(DeviceFaults, ReleaseBlocksReturnsStorage) {
  BlockDevice device(small_blocks());
  const std::uint64_t first = device.allocate(3);
  std::vector<std::int32_t> data(256, 5);
  for (std::uint64_t b = 0; b < 3; ++b)
    device.write_block(first + b, data.data(), 1024);
  EXPECT_EQ(device.live_blocks(), 3u);
  device.release_blocks(first, 2);
  EXPECT_EQ(device.live_blocks(), 1u);
  EXPECT_EQ(device.stats().blocks_released, 2u);
  device.release_blocks(first, 3);  // releasing released blocks is a no-op
  EXPECT_EQ(device.live_blocks(), 0u);
  EXPECT_EQ(device.stats().blocks_released, 3u);
}

TEST(RunFileFaults, RetryAbsorbsTransientFaults) {
  if (!fault::kFaultCompiledIn) GTEST_SKIP() << "MP_FAULT=0 build";
  BlockDevice device(small_blocks());
  fault::FaultPlan plan;
  // Ops: 0 = allocate, 1 = write attempt (fails), 2 = write retry (ok).
  plan.fail_op(1, fault::FaultKind::kTransient);
  fault::ScopedInjector injector(device, plan);

  RunWriter<std::int32_t> writer(device);
  const auto values = make_uniform_values(600, 11);  // ~3 blocks
  writer.append(values.data(), values.size());
  const RunHandle run = writer.finish();
  EXPECT_EQ(writer.retries(), 1u);

  RunReader<std::int32_t> reader(device, run);
  std::vector<std::int32_t> back;
  while (!reader.empty()) back.push_back(reader.next());
  EXPECT_EQ(back, values);
}

TEST(RunFileFaults, ExhaustedRetriesThrowTypedError) {
  if (!fault::kFaultCompiledIn) GTEST_SKIP() << "MP_FAULT=0 build";
  BlockDevice device(small_blocks());
  fault::FaultPlan plan;
  plan.fail_from(0, fault::FaultKind::kTransient);  // every op fails
  fault::ScopedInjector injector(device, plan);

  fault::RetryPolicy retry;
  retry.max_attempts = 3;
  RunWriter<std::int32_t> writer(device, retry);
  const auto values = make_uniform_values(300, 13);
  try {
    writer.append(values.data(), values.size());
    writer.finish();
    FAIL() << "permanent transient storm must exhaust retries";
  } catch (const IoError& error) {
    EXPECT_EQ(error.status(), IoStatus::kInterrupted);
    writer.abandon();
  }
  EXPECT_EQ(device.live_blocks(), 0u);  // abandon released everything
}

TEST(RunFileFaults, MediaErrorIsNotRetried) {
  if (!fault::kFaultCompiledIn) GTEST_SKIP() << "MP_FAULT=0 build";
  BlockDevice device(small_blocks());
  const auto values = make_uniform_values(256, 17);
  RunWriter<std::int32_t> writer(device);
  writer.append(values.data(), values.size());
  const RunHandle run = writer.finish();

  fault::FaultPlan plan;
  plan.fail_op(0, fault::FaultKind::kMedia);
  fault::ScopedInjector injector(device, plan);
  RunReader<std::int32_t> reader(device, run);
  try {
    reader.next();
    FAIL() << "media error must surface";
  } catch (const IoError& error) {
    EXPECT_EQ(error.status(), IoStatus::kMediaError);
  }
  // Exactly one decision: no retry was attempted on the permanent fault.
  EXPECT_EQ(plan.stats().decisions, 1u);
}

TEST(RunFileFaults, AbandonWithoutFlushIsSafe) {
  BlockDevice device(small_blocks());
  RunWriter<std::int32_t> writer(device);
  writer.append(7);  // buffered, nothing flushed
  writer.abandon();
  EXPECT_EQ(device.live_blocks(), 0u);
  // Writer is reusable after abandon.
  const auto values = make_uniform_values(300, 19);
  writer.append(values.data(), values.size());
  const RunHandle run = writer.finish();
  EXPECT_EQ(run.element_count, 300u);
}

TEST(ExternalSortFaults, PermanentFaultReleasesAllTempRuns) {
  if (!fault::kFaultCompiledIn) GTEST_SKIP() << "MP_FAULT=0 build";
  BlockDevice device(small_blocks());
  auto values = make_uniform_values(4000, 23);  // ~16 blocks

  // Write the caller-owned input run fault-free.
  RunWriter<std::int32_t> writer(device);
  writer.append(values.data(), values.size());
  const RunHandle input = writer.finish();
  const std::uint64_t input_blocks = device.live_blocks();

  fault::FaultPlan plan;
  plan.fail_from(40, fault::FaultKind::kMedia);  // die mid-sort
  fault::ScopedInjector injector(device, plan);
  ExternalSortConfig config;
  config.memory_elems = 512;  // force multiple runs and merge passes
  config.fan_in = 2;
  config.exec.threads = 1;
  EXPECT_THROW(external_sort<std::int32_t>(device, input, config), IoError);
  // Every temp run was released: only the input survives.
  EXPECT_EQ(device.live_blocks(), input_blocks);
}

}  // namespace
}  // namespace mp::extmem

namespace mp::dist {
namespace {

TEST(NetFaults, DropIsResentByReliableSend) {
  if (!fault::kFaultCompiledIn) GTEST_SKIP() << "MP_FAULT=0 build";
  RankNetwork net(2);
  fault::FaultPlan plan;
  plan.fail_op(0, fault::FaultKind::kDrop);
  net.set_fault_plan(&plan);
  net.reliable_send(0, 1, 4096);
  const NetStats stats = net.stats();
  EXPECT_EQ(stats.drops, 1u);
  EXPECT_EQ(stats.resends, 1u);
  EXPECT_EQ(stats.messages, 1u);  // exactly one delivery
  EXPECT_EQ(stats.bytes, 4096u);
}

TEST(NetFaults, DuplicateIsDiscardedBySequenceNumber) {
  if (!fault::kFaultCompiledIn) GTEST_SKIP() << "MP_FAULT=0 build";
  RankNetwork net(2);
  fault::FaultPlan plan;
  plan.fail_op(0, fault::FaultKind::kDuplicate);
  net.set_fault_plan(&plan);
  net.reliable_send(0, 1, 100);
  const NetStats stats = net.stats();
  EXPECT_EQ(stats.duplicates, 1u);
  EXPECT_EQ(stats.dedup_discards, 1u);
  EXPECT_EQ(stats.bytes, 100u);  // payload counted once
}

TEST(NetFaults, PersistentPartitionThrowsTypedNetError) {
  if (!fault::kFaultCompiledIn) GTEST_SKIP() << "MP_FAULT=0 build";
  NetConfig config;
  config.max_resend = 4;
  RankNetwork net(2, config);
  fault::FaultPlan plan;
  plan.partition_link(0, 1, 0);  // forever
  net.set_fault_plan(&plan);
  try {
    net.reliable_send(0, 1, 64);
    FAIL() << "partitioned link must throw after max_resend";
  } catch (const NetError& error) {
    EXPECT_EQ(error.src(), 0u);
    EXPECT_EQ(error.dst(), 1u);
    EXPECT_EQ(error.kind(), fault::FaultKind::kPartition);
  }
  EXPECT_EQ(net.stats().resends, 4u);
  // The reverse link still works.
  net.reliable_send(1, 0, 64);
  EXPECT_EQ(net.stats().messages, 1u);
}

TEST(NetFaults, SelfSendsNeverConsultThePlan) {
  RankNetwork net(2);
  fault::FaultPlan plan;
  plan.fail_from(0, fault::FaultKind::kDrop);
  net.set_fault_plan(&plan);
  net.reliable_send(1, 1, 1 << 20);  // local move: free and infallible
  EXPECT_EQ(plan.stats().decisions, 0u);
  EXPECT_EQ(net.stats().messages, 0u);
}

TEST(NetFaults, FaultCostsAreCharged) {
  if (!fault::kFaultCompiledIn) GTEST_SKIP() << "MP_FAULT=0 build";
  // A run with drops+resends must model strictly more time than the same
  // traffic on a perfect network: recovery is honest, never free.
  const auto send_all = [](RankNetwork& net) {
    for (int i = 0; i < 50; ++i) net.reliable_send(0, 1, 8192);
    net.end_round();
  };
  RankNetwork clean(2);
  send_all(clean);
  RankNetwork faulty(2);
  fault::FaultPlan plan(fault::FaultConfig{99, 0.3, 250.0});
  faulty.set_fault_plan(&plan);
  send_all(faulty);
  ASSERT_GT(faulty.stats().faults_injected, 0u);
  EXPECT_GT(faulty.stats().modeled_time_us, clean.stats().modeled_time_us);
}

TEST(DistFaults, MergePathExchangeSurvivesLossyNetwork) {
  if (!fault::kFaultCompiledIn) GTEST_SKIP() << "MP_FAULT=0 build";
  const auto a = make_uniform_values(3000, 7);
  const auto b = make_uniform_values(2500, 8);
  const DistArray da = distribute(a, 4);
  const DistArray db = distribute(b, 4);

  const DistMergeResult clean = merge_path_exchange(da, db);
  fault::FaultPlan plan(fault::FaultConfig{7, 0.1, 250.0});
  NetConfig config;
  config.faults = &plan;
  const DistMergeResult faulty = merge_path_exchange(da, db, config);

  // Same bytes out, and the recovery work shows up in the stats.
  EXPECT_EQ(faulty.merged.gathered(), clean.merged.gathered());
  EXPECT_GT(faulty.net.faults_injected, 0u);
}

TEST(DistFaults, PermanentPartitionSurfacesAsNetError) {
  if (!fault::kFaultCompiledIn) GTEST_SKIP() << "MP_FAULT=0 build";
  const auto a = make_uniform_values(2000, 3);
  const auto b = make_uniform_values(2000, 4);
  const DistArray da = distribute(a, 4);
  const DistArray db = distribute(b, 4);
  fault::FaultPlan plan;
  plan.fail_from(0, fault::FaultKind::kDrop);  // every send drops, forever
  NetConfig config;
  config.faults = &plan;
  config.max_resend = 3;
  config.segment_retries = 1;
  EXPECT_THROW(merge_path_exchange(da, db, config), NetError);
}

}  // namespace
}  // namespace mp::dist

// ---------------------------------------------------------------------------
// RecoveryConfig::retry.backoff_us: in-memory lane retries pay a real,
// doubling wall-clock sleep between re-submissions (unlike the extmem
// retry loop, whose backoff only charges the modeled device clock).

namespace mp {
namespace {

TEST(RecoveryBackoff, DefaultResubmitsImmediately) {
  // The default stays 0 — a transient lane crash should not slow the
  // merge down — even though fault::RetryPolicy's own default is 50 us
  // (tuned for the modeled device clock, not wall time).
  EXPECT_EQ(RecoveryConfig{}.retry.backoff_us, 0.0);
}

TEST(RecoveryBackoff, ConfiguredBackoffIsPaidBetweenRetries) {
  if (!fault::kFaultCompiledIn) GTEST_SKIP() << "MP_FAULT=0 build";
  const auto input = make_merge_input(Dist::kUniform, 4000, 4000, 0xb0ff);
  const auto expected = test::reference_merge(input.a, input.b);

  ThreadPool pool(3);
  fault::FaultPlan plan;
  // Every lane submission crashes, so the retry loop runs the budget dry
  // and the sequential fallback finishes the merge — deterministically
  // two backoff sleeps (20 ms + 40 ms) with max_attempts = 3.
  plan.fail_from(0, fault::FaultKind::kLaneThrow);
  fault::ScopedInjector injector(pool, plan);
  RecoveryConfig cfg;
  cfg.retry.max_attempts = 3;
  cfg.retry.backoff_us = 20000.0;

  std::vector<std::int32_t> out(input.a.size() + input.b.size());
  const auto start = std::chrono::steady_clock::now();
  const RecoveryReport report = resilient_parallel_merge(
      input.a.data(), input.a.size(), input.b.data(), input.b.size(),
      out.data(), Executor{&pool, 4}, std::less<>{}, cfg);
  const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count();

  EXPECT_EQ(out, expected);
  EXPECT_GE(report.retried_lanes, 1u);
  EXPECT_TRUE(report.degraded());
  // Generous lower bound (60 ms slept; sleep_for never wakes early, but
  // keep slack for coarse clocks) so sanitizer runs stay robust.
  EXPECT_GE(elapsed_ms, 50);
}

}  // namespace
}  // namespace mp
