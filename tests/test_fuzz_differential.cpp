// Differential fuzzing: every merge implementation in the repository must
// produce the identical stable merge on randomized (shape, distribution,
// thread-count, parameter) combinations. One seeded generator drives the
// whole schedule, so failures reproduce from the printed seed.

#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/baselines.hpp"
#include "dist/distributed_merge.hpp"
#include "core/mergepath.hpp"
#include "test_support.hpp"
#include "util/data_gen.hpp"
#include "util/rng.hpp"

namespace mp {
namespace {

struct FuzzCase {
  Dist dist;
  std::size_t m, n;
  unsigned threads;
  std::size_t param;  // segment length / tile size, algorithm-dependent
  std::uint64_t seed;
};

FuzzCase draw_case(Xoshiro256& rng) {
  FuzzCase c;
  c.dist = kAllDists[rng.bounded(std::size(kAllDists))];
  // Log-uniform sizes from tiny to mid-size, plus frequent degenerate 0/1.
  auto draw_size = [&]() -> std::size_t {
    switch (rng.bounded(8)) {
      case 0: return 0;
      case 1: return 1;
      default: return std::size_t{1} << rng.bounded(14);
    }
  };
  c.m = draw_size();
  c.n = draw_size();
  c.threads = static_cast<unsigned>(1 + rng.bounded(16));
  c.param = 1 + rng.bounded(4096);
  c.seed = rng();
  return c;
}

class DifferentialFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialFuzz, AllImplementationsAgree) {
  Xoshiro256 rng(0xfeedULL + static_cast<std::uint64_t>(GetParam()));
  for (int iter = 0; iter < 40; ++iter) {
    const FuzzCase c = draw_case(rng);
    SCOPED_TRACE(::testing::Message()
                 << "dist=" << to_string(c.dist) << " m=" << c.m
                 << " n=" << c.n << " p=" << c.threads
                 << " param=" << c.param << " seed=" << c.seed);
    const auto input = make_merge_input(c.dist, c.m, c.n, c.seed);
    const auto expected = test::reference_merge(input.a, input.b);
    const Executor exec{nullptr, c.threads};
    const std::size_t total = c.m + c.n;
    std::vector<std::int32_t> out(total);

    // Algorithm 1.
    parallel_merge(input.a.data(), c.m, input.b.data(), c.n, out.data(),
                   exec);
    ASSERT_EQ(out, expected) << "parallel_merge";

    // Algorithm 2 with a fuzzed segment length.
    std::fill(out.begin(), out.end(), -1);
    SegmentedConfig seg;
    seg.segment_length = c.param;
    segmented_parallel_merge(input.a.data(), c.m, input.b.data(), c.n,
                             out.data(), seg, exec);
    ASSERT_EQ(out, expected) << "segmented";

    // Tiled with a fuzzed tile size.
    std::fill(out.begin(), out.end(), -1);
    tiled_parallel_merge(input.a.data(), c.m, input.b.data(), c.n,
                         out.data(), c.param, exec);
    ASSERT_EQ(out, expected) << "tiled";

    // Recursive splitting on the shared work-stealing scheduler, with the
    // fuzzed param as grain size (1..4096 spans the all-sequential to
    // deeply-forked range for these sizes).
    std::fill(out.begin(), out.end(), -1);
    RecursiveConfig rc;
    rc.merge_grain = c.param;
    par_merge_recursive(input.a.data(), c.m, input.b.data(), c.n,
                        out.data(), rc);
    ASSERT_EQ(out, expected) << "recursive";

    // Baselines.
    ASSERT_EQ(baselines::shiloach_vishkin_merge(input.a, input.b, exec),
              expected)
        << "shiloach_vishkin";
    ASSERT_EQ(baselines::akl_santoro_merge(input.a, input.b, exec), expected)
        << "akl_santoro";
    ASSERT_EQ(baselines::deo_sarkar_merge(input.a, input.b, exec), expected)
        << "deo_sarkar";
    // Bitonic is unstable: compare values only (equal ints are
    // indistinguishable, so direct equality still holds).
    ASSERT_EQ(baselines::bitonic_merge(input.a, input.b, exec), expected)
        << "bitonic";

    // Multiway with k = 2 must coincide with the stable two-way merge.
    ASSERT_EQ(parallel_multiway_merge(
                  std::vector<std::vector<std::int32_t>>{input.a, input.b},
                  exec),
              expected)
        << "multiway";

    // Stream merger fed in fuzzed chunk sizes.
    {
      StreamMerger<std::int32_t> merger({}, exec);
      std::size_t fa = 0, fb = 0;
      std::vector<std::int32_t> got;
      std::vector<std::int32_t> buf(1 + c.param % 257);
      while (!merger.finished()) {
        if (fa < c.m && rng.bounded(2) == 0) {
          const std::size_t len =
              std::min<std::size_t>(1 + rng.bounded(1000), c.m - fa);
          merger.push_a(
              std::span<const std::int32_t>(input.a.data() + fa, len));
          fa += len;
        } else if (fb < c.n && rng.bounded(2) == 0) {
          const std::size_t len =
              std::min<std::size_t>(1 + rng.bounded(1000), c.n - fb);
          merger.push_b(
              std::span<const std::int32_t>(input.b.data() + fb, len));
          fb += len;
        } else {
          if (fa == c.m && merger.a_open()) merger.close_a();
          if (fb == c.n && merger.b_open()) merger.close_b();
          const std::size_t got_n =
              merger.pull(std::span<std::int32_t>(buf));
          got.insert(got.end(), buf.begin(),
                     buf.begin() + static_cast<std::ptrdiff_t>(got_n));
        }
      }
      ASSERT_EQ(got, expected) << "stream_merger";
    }
  }
}

// 8 shards x 40 cases x ~9 implementations each.
INSTANTIATE_TEST_SUITE_P(Shards, DifferentialFuzz, ::testing::Range(0, 8));

class SortFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SortFuzz, AllSortsAgree) {
  Xoshiro256 rng(0xbeefULL + static_cast<std::uint64_t>(GetParam()));
  for (int iter = 0; iter < 12; ++iter) {
    const std::size_t n = rng.bounded(3) == 0
                              ? rng.bounded(4)
                              : (std::size_t{1} << rng.bounded(15));
    const unsigned threads = static_cast<unsigned>(1 + rng.bounded(12));
    const std::size_t cache = 256u << rng.bounded(8);
    SCOPED_TRACE(::testing::Message() << "n=" << n << " p=" << threads
                                      << " cache=" << cache);
    auto data = make_unsorted_values(n, rng());
    auto expected = data;
    std::sort(expected.begin(), expected.end());

    auto d1 = data;
    parallel_merge_sort(d1.data(), n, Executor{nullptr, threads});
    ASSERT_EQ(d1, expected) << "parallel_merge_sort";

    auto d2 = data;
    CacheSortConfig config;
    config.cache_bytes = cache;
    cache_efficient_parallel_sort(d2.data(), n, config,
                                  Executor{nullptr, threads});
    ASSERT_EQ(d2, expected) << "cache_sort";

    auto d3 = data;
    baselines::bitonic_sort(std::span<std::int32_t>(d3),
                            Executor{nullptr, threads});
    ASSERT_EQ(d3, expected) << "bitonic_sort";

    auto d4 = data;
    RecursiveConfig rc;
    rc.sort_grain = 1 + rng.bounded(4096);
    rc.merge_grain = 1 + rng.bounded(4096);
    recursive_merge_sort(d4.data(), n, rc);
    ASSERT_EQ(d4, expected) << "recursive_merge_sort";
  }
}

// Skewed and duplicate-heavy inputs for the recursive sort specifically:
// zipf key frequencies make long tie runs, organ-pipe/all-equal merges
// stress the co-rank snapping at every split level.
TEST_P(SortFuzz, RecursiveSortHandlesSkewAndDuplicates) {
  Xoshiro256 rng(0x51a9ULL + static_cast<std::uint64_t>(GetParam()));
  for (int iter = 0; iter < 10; ++iter) {
    const std::size_t n = rng.bounded(3) == 0 ? rng.bounded(4)
                                              : 100 + rng.bounded(30000);
    SCOPED_TRACE(::testing::Message() << "n=" << n << " iter=" << iter);
    std::vector<std::int32_t> data;
    switch (rng.bounded(3)) {
      case 0:  // zipf-skewed duplicates, shuffled
        data = make_zipf_values(n, 1000, 1.2, rng());
        for (std::size_t i = n; i > 1; --i)
          std::swap(data[i - 1], data[rng.bounded(i)]);
        break;
      case 1:  // tiny universe => almost everything is a tie
        data.resize(n);
        for (auto& v : data) v = static_cast<std::int32_t>(rng.bounded(3));
        break;
      default:  // descending runs (worst case for pre-sorted assumptions)
        data.resize(n);
        for (std::size_t i = 0; i < n; ++i)
          data[i] = static_cast<std::int32_t>(n - i);
        break;
    }
    auto expected = data;
    std::sort(expected.begin(), expected.end());
    RecursiveConfig rc;
    rc.sort_grain = 1 + rng.bounded(2048);
    rc.merge_grain = 1 + rng.bounded(2048);
    recursive_merge_sort(data.data(), n, rc);
    ASSERT_EQ(data, expected);
  }
}

// Grain-size boundaries: n pinned exactly at, below and above the cutoff
// (including 0 and 1) for both the recursive merge and the recursive
// sort. Off-by-ones here either lose the base case (infinite recursion,
// caught by the ctest TIMEOUT) or fork size-0 tasks.
TEST(RecursiveGrainBoundaries, MergeAndSortAreExactAroundTheCutoff) {
  for (const std::size_t grain : {std::size_t{1}, std::size_t{2},
                                  std::size_t{7}, std::size_t{64}}) {
    for (const std::size_t total :
         {std::size_t{0}, std::size_t{1}, grain - 1, grain, grain + 1,
          2 * grain, 2 * grain + 1, 4 * grain + 3}) {
      SCOPED_TRACE(::testing::Message()
                   << "grain=" << grain << " total=" << total);
      RecursiveConfig rc;
      rc.merge_grain = grain;
      rc.sort_grain = grain;
      // Merge: every split of `total` across the two inputs.
      for (std::size_t m = 0; m <= total; ++m) {
        const auto input = make_merge_input(Dist::kFewDuplicates, m,
                                            total - m, 0x60a1 + total);
        const auto expected = test::reference_merge(input.a, input.b);
        std::vector<std::int32_t> out(total, -1);
        par_merge_recursive(input.a.data(), m, input.b.data(), total - m,
                            out.data(), rc);
        ASSERT_EQ(out, expected) << "merge m=" << m;
      }
      // Sort at the same boundary sizes.
      auto data = make_unsorted_values(total, 0xb0bb + total);
      auto expected = data;
      std::sort(expected.begin(), expected.end());
      recursive_merge_sort(data.data(), total, rc);
      ASSERT_EQ(data, expected) << "sort";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, SortFuzz, ::testing::Range(0, 4));

class SetOpsFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SetOpsFuzz, SetOpsAgreeWithStd) {
  Xoshiro256 rng(0xcafeULL + static_cast<std::uint64_t>(GetParam()));
  for (int iter = 0; iter < 30; ++iter) {
    const Dist dist = kAllDists[rng.bounded(std::size(kAllDists))];
    const std::size_t m = rng.bounded(3000);
    const std::size_t n = rng.bounded(3000);
    const unsigned threads = static_cast<unsigned>(1 + rng.bounded(12));
    SCOPED_TRACE(::testing::Message() << to_string(dist) << " m=" << m
                                      << " n=" << n << " p=" << threads);
    const auto input = make_merge_input(dist, m, n, rng());
    const Executor exec{nullptr, threads};

    std::vector<std::int32_t> expected;
    std::set_union(input.a.begin(), input.a.end(), input.b.begin(),
                   input.b.end(), std::back_inserter(expected));
    ASSERT_EQ(parallel_set_union(input.a, input.b, exec), expected);

    expected.clear();
    std::set_intersection(input.a.begin(), input.a.end(), input.b.begin(),
                          input.b.end(), std::back_inserter(expected));
    ASSERT_EQ(parallel_set_intersection(input.a, input.b, exec), expected);

    expected.clear();
    std::set_difference(input.a.begin(), input.a.end(), input.b.begin(),
                        input.b.end(), std::back_inserter(expected));
    ASSERT_EQ(parallel_set_difference(input.a, input.b, exec), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, SetOpsFuzz, ::testing::Range(0, 4));

class ExtensionsFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ExtensionsFuzz, PayloadTopKAndDistributedAgree) {
  Xoshiro256 rng(0xabcdULL + static_cast<std::uint64_t>(GetParam()));
  for (int iter = 0; iter < 20; ++iter) {
    const Dist dist = kAllDists[rng.bounded(std::size(kAllDists))];
    const std::size_t m = rng.bounded(2000);
    const std::size_t n = rng.bounded(2000);
    const unsigned threads = static_cast<unsigned>(1 + rng.bounded(10));
    SCOPED_TRACE(::testing::Message() << to_string(dist) << " m=" << m
                                      << " n=" << n << " p=" << threads);
    const auto input = make_merge_input(dist, m, n, rng());
    const auto expected = test::reference_merge(input.a, input.b);
    const Executor exec{nullptr, threads};

    // merge_by_key: keys must equal the plain merge.
    {
      std::vector<std::uint32_t> va(m), vb(n);
      for (std::size_t i = 0; i < m; ++i) va[i] = static_cast<std::uint32_t>(i);
      for (std::size_t j = 0; j < n; ++j) vb[j] = static_cast<std::uint32_t>(j);
      const auto [keys, values] =
          parallel_merge_by_key(input.a, va, input.b, vb, exec);
      ASSERT_EQ(keys, expected) << "merge_by_key";
      ASSERT_EQ(values.size(), expected.size());
    }

    // first-k at a random k is the prefix.
    {
      const std::size_t k = rng.bounded(m + n + 1);
      std::vector<std::int32_t> out(k);
      merge_first_k(input.a.data(), m, input.b.data(), n, out.data(), k,
                    exec);
      ASSERT_TRUE(std::equal(out.begin(), out.end(), expected.begin()))
          << "merge_first_k";
    }

    // Distributed: all four algorithms over a random rank count.
    {
      const unsigned ranks = static_cast<unsigned>(1 + rng.bounded(9));
      const auto da = dist::distribute(input.a, ranks);
      const auto db = dist::distribute(input.b, ranks);
      ASSERT_EQ(dist::merge_path_exchange(da, db).merged.gathered(),
                expected)
          << "dist exchange r=" << ranks;
      ASSERT_EQ(dist::tree_merge(da, db).merged.gathered(), expected)
          << "dist tree r=" << ranks;
    }

    // Oracles accept every real output and the interleave oracle rejects a
    // corrupted one.
    ASSERT_TRUE(is_stable_merge_of(input.a.data(), m, input.b.data(), n,
                                   expected.data()));
    if (expected.size() >= 2 && expected.front() != expected.back()) {
      auto corrupted = expected;
      std::swap(corrupted.front(), corrupted.back());
      ASSERT_FALSE(is_merge_of(input.a.data(), m, input.b.data(), n,
                               corrupted.data()));
    }
  }
}

TEST_P(ExtensionsFuzz, MultiwayAndDistributedSortsAgree) {
  Xoshiro256 rng(0xdcbaULL + static_cast<std::uint64_t>(GetParam()));
  for (int iter = 0; iter < 10; ++iter) {
    const std::size_t n = rng.bounded(20000);
    const unsigned threads = static_cast<unsigned>(1 + rng.bounded(10));
    const unsigned ranks = static_cast<unsigned>(1 + rng.bounded(12));
    SCOPED_TRACE(::testing::Message()
                 << "n=" << n << " p=" << threads << " r=" << ranks);
    const auto values = make_unsorted_values(n, rng());
    auto expected = values;
    std::sort(expected.begin(), expected.end());

    auto d1 = values;
    multiway_merge_sort(d1.data(), n, Executor{nullptr, threads});
    ASSERT_EQ(d1, expected) << "multiway_merge_sort";

    const auto d2 =
        dist::distributed_sort(dist::distribute(values, ranks));
    ASSERT_EQ(d2.merged.gathered(), expected) << "distributed_sort";

    auto d3 = values;
    baselines::parallel_radix_sort(d3.data(), n, Executor{nullptr, threads});
    ASSERT_EQ(d3, expected) << "radix";
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, ExtensionsFuzz, ::testing::Range(0, 4));

}  // namespace
}  // namespace mp
