// Type-genericity suite: the algorithm templates must work for any
// random-access element type + strict-weak-order comparator combination,
// not just int32. Exercises double (NaN-free), int64, non-trivially-
// copyable std::string, and a padded struct with a projection comparator,
// across the main entry points.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/mergepath.hpp"
#include "util/rng.hpp"

namespace mp {
namespace {

template <typename T, typename Gen>
std::pair<std::vector<T>, std::vector<T>> sorted_pair(std::size_t m,
                                                      std::size_t n,
                                                      Gen gen) {
  std::pair<std::vector<T>, std::vector<T>> out;
  out.first.resize(m);
  out.second.resize(n);
  for (auto& v : out.first) v = gen();
  for (auto& v : out.second) v = gen();
  std::sort(out.first.begin(), out.first.end());
  std::sort(out.second.begin(), out.second.end());
  return out;
}

template <typename T>
std::vector<T> ref_merge(const std::vector<T>& a, const std::vector<T>& b) {
  std::vector<T> out(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), out.begin());
  return out;
}

TEST(GenericTypes, DoubleElements) {
  Xoshiro256 rng(1501);
  auto [a, b] = sorted_pair<double>(2000, 1500,
                                    [&] { return rng.uniform01() * 1e6; });
  const auto expected = ref_merge(a, b);

  std::vector<double> out(3500);
  parallel_merge(a.data(), a.size(), b.data(), b.size(), out.data(),
                 Executor{nullptr, 4});
  EXPECT_EQ(out, expected);

  SegmentedConfig seg;
  seg.segment_length = 333;
  segmented_parallel_merge(a.data(), a.size(), b.data(), b.size(),
                           out.data(), seg, Executor{nullptr, 4});
  EXPECT_EQ(out, expected);

  tiled_parallel_merge(a.data(), a.size(), b.data(), b.size(), out.data(),
                       256, Executor{nullptr, 4});
  EXPECT_EQ(out, expected);
}

TEST(GenericTypes, Int64FullRange) {
  Xoshiro256 rng(1503);
  auto [a, b] = sorted_pair<std::int64_t>(3000, 3000, [&] {
    return static_cast<std::int64_t>(rng()) /* full 64-bit range */;
  });
  EXPECT_EQ(parallel_merge(a, b, Executor{nullptr, 6}), ref_merge(a, b));

  auto values = a;
  values.insert(values.end(), b.begin(), b.end());
  auto expected = values;
  std::sort(expected.begin(), expected.end());
  parallel_merge_sort(std::span<std::int64_t>(values), Executor{nullptr, 5});
  EXPECT_EQ(values, expected);
}

TEST(GenericTypes, Strings) {
  Xoshiro256 rng(1505);
  auto gen = [&] {
    std::string s(1 + rng.bounded(12), 'a');
    for (auto& c : s) c = static_cast<char>('a' + rng.bounded(26));
    return s;
  };
  auto [a, b] = sorted_pair<std::string>(500, 400, gen);
  EXPECT_EQ(parallel_merge(a, b, Executor{nullptr, 4}), ref_merge(a, b));

  // Sorting non-trivially-copyable elements through the move paths.
  auto values = a;
  values.insert(values.end(), b.begin(), b.end());
  auto expected = values;
  std::stable_sort(expected.begin(), expected.end());
  parallel_merge_sort(std::span<std::string>(values), Executor{nullptr, 4});
  EXPECT_EQ(values, expected);

  // Multiway with string runs.
  const auto merged = parallel_multiway_merge(
      std::vector<std::vector<std::string>>{a, b, a}, Executor{nullptr, 3});
  EXPECT_EQ(merged.size(), 2 * a.size() + b.size());
  EXPECT_TRUE(std::is_sorted(merged.begin(), merged.end()));
}

struct Reading {
  double celsius = 0;
  char station[16] = {};
  std::uint32_t id = 0;

  friend bool operator==(const Reading&, const Reading&) = default;
};

TEST(GenericTypes, StructWithProjectionComparator) {
  auto by_temp = [](const Reading& x, const Reading& y) {
    return x.celsius < y.celsius;
  };
  Xoshiro256 rng(1507);
  auto gen = [&] {
    Reading r;
    r.celsius = static_cast<double>(rng.bounded(80)) - 20.0;
    r.id = static_cast<std::uint32_t>(rng());
    return r;
  };
  std::vector<Reading> a(800), b(700);
  for (auto& r : a) r = gen();
  for (auto& r : b) r = gen();
  std::sort(a.begin(), a.end(), by_temp);
  std::sort(b.begin(), b.end(), by_temp);

  std::vector<Reading> out(1500);
  parallel_merge(a.data(), a.size(), b.data(), b.size(), out.data(),
                 Executor{nullptr, 5}, by_temp);
  std::vector<Reading> expected(1500);
  std::merge(a.begin(), a.end(), b.begin(), b.end(), expected.begin(),
             by_temp);
  EXPECT_EQ(out, expected);

  // Duplicate temperatures abound (integer-degree readings): verify the
  // stable merge oracle accepts the output under the projection.
  EXPECT_TRUE(is_stable_merge_of(a.data(), a.size(), b.data(), b.size(),
                                 out.data(), by_temp));
}

TEST(GenericTypes, SetOpsAndStreamMergerOnDoubles) {
  Xoshiro256 rng(1509);
  auto [a, b] = sorted_pair<double>(1000, 900, [&] {
    return static_cast<double>(rng.bounded(500));  // duplicates guaranteed
  });
  std::vector<double> expected;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(expected));
  EXPECT_EQ(parallel_set_intersection(a, b, Executor{nullptr, 4}), expected);

  StreamMerger<double> merger;
  merger.push_a(std::span<const double>(a));
  merger.push_b(std::span<const double>(b));
  merger.close_a();
  merger.close_b();
  EXPECT_EQ(merger.pull_all(), ref_merge(a, b));
}

TEST(GenericTypes, KthSmallestOnStrings) {
  const std::vector<std::string> a{"apple", "cherry", "grape"};
  const std::vector<std::string> b{"banana", "date", "fig"};
  // Union: apple banana cherry date fig grape.
  EXPECT_EQ(kth_smallest(a.data(), 3, b.data(), 3, 0), "apple");
  EXPECT_EQ(kth_smallest(a.data(), 3, b.data(), 3, 3), "date");
  EXPECT_EQ(kth_smallest(a.data(), 3, b.data(), 3, 5), "grape");
}

}  // namespace
}  // namespace mp
