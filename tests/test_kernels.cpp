// Tests for src/kernels/ (S24): byte-exact equivalence of every
// dispatchable kernel against merge_steps() across lengths 0..257 and the
// adversarial generator distributions, cursor-resume behavior under
// partial step budgets, the dispatch/override surface (parse, env
// resolution, set_kernel clamping), the MERGEPATH_SIMD=OFF inertness
// contract, the compile-time trait that keeps payload/comparator/float
// merges off the vector path, and end-to-end equivalence through the
// wired hot paths (parallel merge, SPM, merge sort, multiway).

#include "kernels/kernels.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <limits>
#include <list>
#include <random>
#include <span>
#include <vector>

#include "core/mergepath.hpp"
#include "test_support.hpp"
#include "util/data_gen.hpp"

namespace mp::kernels {
namespace {

/// Saves the selected kernel and restores it on scope exit, so a test
/// that forces a kernel cannot leak the choice into later tests.
struct KernelGuard {
  Kernel saved = selected_kernel();
  ~KernelGuard() { set_kernel(saved); }
};

std::vector<Kernel> supported_kernels() {
  std::vector<Kernel> out;
  for (Kernel k : kAllKernels)
    if (kernel_supported(k)) out.push_back(k);
  return out;
}

// Order-preserving widenings of the int32 generator output, so one
// generator covers all four vectorized key types. The sign-bit flip makes
// the unsigned order match the signed order; the low bits keep 64-bit
// keys collision-rich but distinct enough to stress the tie handling.
std::vector<std::uint32_t> as_u32(const std::vector<std::int32_t>& v) {
  std::vector<std::uint32_t> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i)
    out[i] = static_cast<std::uint32_t>(v[i]) ^ 0x80000000u;
  return out;
}
std::vector<std::int64_t> as_i64(const std::vector<std::int32_t>& v) {
  std::vector<std::int64_t> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i)
    out[i] = (static_cast<std::int64_t>(v[i]) << 16) - 3;
  return out;
}
std::vector<std::uint64_t> as_u64(const std::vector<std::int32_t>& v) {
  std::vector<std::uint64_t> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i)
    out[i] = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(v[i]) ^
                                         0x80000000u)
              << 32) |
             0xfeedu;
  return out;
}

/// Merges (a, b) twice under a `steps` budget — scalar merge_steps() as
/// the oracle, merge_steps_auto() with `kernel` forced as the candidate —
/// and requires identical output bytes AND identical final cursors (the
/// resumability contract the lane machinery depends on).
template <typename T>
void expect_equivalent(const std::vector<T>& a, const std::vector<T>& b,
                       Kernel kernel, std::size_t steps) {
  std::vector<T> want(steps), got(steps);
  std::size_t wi = 0, wj = 0;
  merge_steps(a.data(), a.size(), b.data(), b.size(), &wi, &wj, want.data(),
              steps);
  KernelGuard guard;
  ASSERT_TRUE(set_kernel(kernel));
  std::size_t gi = 0, gj = 0;
  merge_steps_auto(a.data(), a.size(), b.data(), b.size(), &gi, &gj,
                   got.data(), steps);
  ASSERT_EQ(got, want) << to_string(kernel) << " m=" << a.size()
                       << " n=" << b.size() << " steps=" << steps;
  ASSERT_EQ(gi, wi) << to_string(kernel) << " a-cursor";
  ASSERT_EQ(gj, wj) << to_string(kernel) << " b-cursor";
}

TEST(KernelEquivalence, AllLengthsZeroTo257AllKernels) {
  // Every length through 257 crosses all the interesting boundaries: the
  // vector widths (2/4/8), the guard band where the loops must hand off
  // to the scalar tail, and the 256-element prefetch distance.
  for (Kernel kernel : supported_kernels()) {
    for (std::size_t len = 0; len <= 257; ++len) {
      const auto input =
          make_merge_input(Dist::kUniform, len, len, 0x5eed + len);
      expect_equivalent(input.a, input.b, kernel, 2 * len);
    }
  }
}

TEST(KernelEquivalence, AdversarialDistributions) {
  // All-ties, duplicate-heavy and presorted-adversarial inputs: the take
  // count must reproduce the scalar kernel's A-priority co-rank exactly,
  // which ties stress hardest (a[i] <= b[j] must count as an A take).
  for (Kernel kernel : supported_kernels()) {
    for (Dist dist : {Dist::kAllEqual, Dist::kFewDuplicates,
                      Dist::kDisjointLow, Dist::kDisjointHigh,
                      Dist::kInterleaved, Dist::kClustered,
                      Dist::kOrganPipe}) {
      for (std::size_t len : {31u, 64u, 100u, 257u}) {
        const auto input = make_merge_input(dist, len, len, 0xd157 + len);
        expect_equivalent(input.a, input.b, kernel, 2 * len);
      }
    }
  }
}

TEST(KernelEquivalence, AsymmetricShapes) {
  for (Kernel kernel : supported_kernels()) {
    for (std::size_t m : {0u, 1u, 7u, 33u, 128u, 257u}) {
      const auto input = make_merge_input(Dist::kUniform, m, 64, 0xa5 + m);
      expect_equivalent(input.a, input.b, kernel, m + 64);
    }
  }
}

TEST(KernelEquivalence, AllKeyWidthsAndSignedness) {
  const auto base = make_merge_input(Dist::kFewDuplicates, 200, 173, 0x3247);
  for (Kernel kernel : supported_kernels()) {
    expect_equivalent(base.a, base.b, kernel, 373);
    expect_equivalent(as_u32(base.a), as_u32(base.b), kernel, 373);
    expect_equivalent(as_i64(base.a), as_i64(base.b), kernel, 373);
    expect_equivalent(as_u64(base.a), as_u64(base.b), kernel, 373);
  }
}

// Bitwise-identical float vectors (operator== is useless once NaNs are
// in play: NaN != NaN would fail exactly the payloads the total-order
// mode is supposed to preserve).
template <typename T>
void expect_bitwise_equal(const std::vector<T>& got,
                          const std::vector<T>& want, Kernel kernel) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(std::memcmp(&got[i], &want[i], sizeof(T)), 0)
        << to_string(kernel) << " differs at " << i;
  }
}

/// Scalar merge_steps() under TotalOrderLess as the oracle vs the forced
/// kernel through merge_steps_auto(): identical bytes, identical cursors.
template <typename T>
void expect_equivalent_total_order(const std::vector<T>& a,
                                   const std::vector<T>& b, Kernel kernel,
                                   std::size_t steps) {
  std::vector<T> want(steps), got(steps);
  std::size_t wi = 0, wj = 0;
  merge_steps(a.data(), a.size(), b.data(), b.size(), &wi, &wj, want.data(),
              steps, TotalOrderLess{});
  KernelGuard guard;
  ASSERT_TRUE(set_kernel(kernel));
  std::size_t gi = 0, gj = 0;
  merge_steps_auto(a.data(), a.size(), b.data(), b.size(), &gi, &gj,
                   got.data(), steps, TotalOrderLess{});
  expect_bitwise_equal(got, want, kernel);
  ASSERT_EQ(gi, wi) << to_string(kernel) << " a-cursor";
  ASSERT_EQ(gj, wj) << to_string(kernel) << " b-cursor";
}

/// Adversarial float input: random bit patterns (which naturally include
/// NaNs, denormals and infinities) salted with the special values the
/// totalOrder axioms care about, sorted by TotalOrderLess.
template <typename T>
std::vector<T> make_total_order_input(std::size_t len, std::uint64_t seed) {
  using Bits = std::conditional_t<sizeof(T) == 4, std::uint32_t,
                                  std::uint64_t>;
  std::mt19937_64 rng(seed);
  std::vector<T> out;
  out.reserve(len);
  const T specials[] = {
      T(0.0),
      T(-0.0),
      std::numeric_limits<T>::infinity(),
      -std::numeric_limits<T>::infinity(),
      std::numeric_limits<T>::quiet_NaN(),
      -std::numeric_limits<T>::quiet_NaN(),
      std::bit_cast<T>(static_cast<Bits>(sizeof(T) == 4
                                             ? 0x7fc00001u
                                             : 0x7ff8000000000001ull)),
      std::numeric_limits<T>::denorm_min(),
      -std::numeric_limits<T>::denorm_min(),
      std::numeric_limits<T>::min(),
      T(1.5),
      T(-1.5),
  };
  for (std::size_t i = 0; i < len; ++i) {
    if (i % 4 == 0) {
      out.push_back(specials[rng() % std::size(specials)]);
    } else {
      out.push_back(std::bit_cast<T>(static_cast<Bits>(rng())));
    }
  }
  std::sort(out.begin(), out.end(), TotalOrderLess{});
  return out;
}

TEST(KernelEquivalence, FloatTotalOrderAllKernels) {
  // The total-order float mode: float/double merges under TotalOrderLess
  // ride the integer vector kernels via the sign-flip bijection. The
  // inputs are deliberately hostile — signed zeros, quiet NaNs with
  // distinct payloads (both signs), denormals, infinities — and the
  // contract is bitwise, not just value, equality.
  for (Kernel kernel : supported_kernels()) {
    for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 100u, 257u}) {
      expect_equivalent_total_order(
          make_total_order_input<float>(len, 0xf10a + len),
          make_total_order_input<float>(len + len / 3, 0xf10b + len), kernel,
          2 * len + len / 3);
      expect_equivalent_total_order(
          make_total_order_input<double>(len, 0xd0b1 + len),
          make_total_order_input<double>(len + len / 3, 0xd0b2 + len), kernel,
          2 * len + len / 3);
    }
  }
}

TEST(KernelEquivalence, FloatTotalOrderMatchesStdSortOrder) {
  // TotalOrderLess itself must realize IEEE totalOrder: merging two
  // sorted runs yields the same bytes std::sort produces on the
  // concatenation (true only because the comparator is a genuine total
  // order even with NaNs — std::less would scramble them).
  const auto a = make_total_order_input<float>(300, 0xab1);
  const auto b = make_total_order_input<float>(257, 0xab2);
  std::vector<float> want;
  want.insert(want.end(), a.begin(), a.end());
  want.insert(want.end(), b.begin(), b.end());
  std::sort(want.begin(), want.end(), TotalOrderLess{});
  for (Kernel kernel : supported_kernels()) {
    KernelGuard guard;
    ASSERT_TRUE(set_kernel(kernel));
    std::vector<float> got(want.size());
    std::size_t i = 0, j = 0;
    merge_steps_auto(a.data(), a.size(), b.data(), b.size(), &i, &j,
                     got.data(), got.size(), TotalOrderLess{});
    expect_bitwise_equal(got, want, kernel);
  }
}

TEST(KernelEquivalence, PartialBudgetsAndResume) {
  // The lane machinery calls the kernel with a step budget and resumes
  // from saved cursors; the vector loops must advance *a_pos/*b_pos
  // exactly as the scalar kernel would at every cut point.
  const auto input = make_merge_input(Dist::kClustered, 160, 160, 0xcafe);
  for (Kernel kernel : supported_kernels()) {
    for (std::size_t steps : {0u, 1u, 7u, 31u, 32u, 33u, 95u, 319u}) {
      expect_equivalent(input.a, input.b, kernel, steps);
    }
    // Resume: split one merge across two auto calls at an arbitrary cut
    // and compare against one full scalar pass.
    std::vector<std::int32_t> want(320), got(320);
    std::size_t wi = 0, wj = 0;
    merge_steps(input.a.data(), 160, input.b.data(), 160, &wi, &wj,
                want.data(), 320);
    KernelGuard guard;
    ASSERT_TRUE(set_kernel(kernel));
    std::size_t gi = 0, gj = 0;
    merge_steps_auto(input.a.data(), 160, input.b.data(), 160, &gi, &gj,
                     got.data(), 153);
    merge_steps_auto(input.a.data(), 160, input.b.data(), 160, &gi, &gj,
                     got.data() + 153, 167);
    ASSERT_EQ(got, want) << to_string(kernel);
    ASSERT_EQ(gi, wi);
    ASSERT_EQ(gj, wj);
  }
}

TEST(KernelEquivalence, InstrumentedCallsStayScalar) {
  // PRAM op counts model one compare/move per path step; the vector path
  // would falsify them, so instr != nullptr must force the scalar kernel.
  const auto input = make_merge_input(Dist::kUniform, 500, 500, 0x0b5);
  KernelGuard guard;
  ASSERT_TRUE(set_kernel(widest_supported()));
  std::vector<std::int32_t> out(1000);
  OpCounts ops;
  std::size_t i = 0, j = 0;
  merge_steps_auto(input.a.data(), 500, input.b.data(), 500, &i, &j,
                   out.data(), 1000, std::less<>{}, &ops);
  EXPECT_EQ(ops.moves, 1000u);
  EXPECT_GE(ops.compares, 500u);
  EXPECT_EQ(out, test::reference_merge(input.a, input.b));
}

// ---------------------------------------------------------------------------
// Dispatch surface.

TEST(KernelDispatch, ParseRoundTripsAndRejectsUnknown) {
  for (Kernel k : kAllKernels) {
    const auto parsed = parse_kernel(to_string(k));
    ASSERT_TRUE(parsed.has_value()) << to_string(k);
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(parse_kernel("").has_value());
  EXPECT_FALSE(parse_kernel("auto").has_value());  // env-only spelling
  EXPECT_FALSE(parse_kernel("AVX2").has_value());
  EXPECT_FALSE(parse_kernel("banana").has_value());
}

TEST(KernelDispatch, ScalarAndBranchlessAlwaysSupported) {
  EXPECT_TRUE(kernel_supported(Kernel::kScalar));
  EXPECT_TRUE(kernel_supported(Kernel::kBranchless));
}

TEST(KernelDispatch, SimdSupportRequiresCompiledInTUs) {
  if (kSimdCompiledIn) GTEST_SKIP() << "SIMD TUs compiled in";
  EXPECT_FALSE(kernel_supported(Kernel::kSse4));
  EXPECT_FALSE(kernel_supported(Kernel::kAvx2));
  EXPECT_FALSE(kernel_supported(Kernel::kAvx512));
  EXPECT_EQ(widest_supported(), Kernel::kScalar);
}

TEST(KernelDispatch, WidestIsOrderedAndSupported) {
  const Kernel widest = widest_supported();
  EXPECT_TRUE(kernel_supported(widest));
  if (kernel_supported(Kernel::kAvx512)) {
    EXPECT_EQ(widest, Kernel::kAvx512);
  } else if (kernel_supported(Kernel::kAvx2)) {
    EXPECT_EQ(widest, Kernel::kAvx2);
  } else if (kernel_supported(Kernel::kSse4)) {
    EXPECT_EQ(widest, Kernel::kSse4);
  } else {
    EXPECT_EQ(widest, Kernel::kScalar);
  }
}

TEST(KernelDispatch, BranchlessIsNeverAutoSelected) {
  // Satellite of the demotion: BENCH_5 measured branchless at 0.89-0.90x
  // *slower* than scalar, so auto-dispatch must never pick it no matter
  // which ISA bits the host reports. Explicit override keeps working.
  EXPECT_NE(widest_supported(), Kernel::kBranchless);
  std::string warning;
  EXPECT_NE(detail::resolve_override(nullptr, &warning),
            Kernel::kBranchless);
  EXPECT_NE(detail::resolve_override("auto", &warning), Kernel::kBranchless);
  EXPECT_EQ(detail::resolve_override("branchless", &warning),
            Kernel::kBranchless);
  EXPECT_TRUE(warning.empty());
}

TEST(KernelDispatch, SetKernelRejectsUnsupportedAndKeepsSelection) {
  KernelGuard guard;
  ASSERT_TRUE(set_kernel(Kernel::kScalar));
  for (Kernel k : {Kernel::kSse4, Kernel::kAvx2, Kernel::kAvx512}) {
    if (kernel_supported(k)) {
      EXPECT_TRUE(set_kernel(k));
      EXPECT_EQ(selected_kernel(), k);
      ASSERT_TRUE(set_kernel(Kernel::kScalar));
    } else {
      EXPECT_FALSE(set_kernel(k));
      EXPECT_EQ(selected_kernel(), Kernel::kScalar) << "selection leaked";
    }
  }
}

TEST(KernelDispatch, EnvOverrideResolution) {
  std::string warning;
  EXPECT_EQ(detail::resolve_override(nullptr, &warning), widest_supported());
  EXPECT_TRUE(warning.empty());
  EXPECT_EQ(detail::resolve_override("", &warning), widest_supported());
  EXPECT_EQ(detail::resolve_override("auto", &warning), widest_supported());
  EXPECT_TRUE(warning.empty());
  EXPECT_EQ(detail::resolve_override("scalar", &warning), Kernel::kScalar);
  EXPECT_EQ(detail::resolve_override("branchless", &warning),
            Kernel::kBranchless);
  EXPECT_TRUE(warning.empty());
  // Unknown names clamp to the widest kernel and explain themselves.
  EXPECT_EQ(detail::resolve_override("banana", &warning), widest_supported());
  EXPECT_NE(warning.find("banana"), std::string::npos);
  warning.clear();
  if (!kernel_supported(Kernel::kAvx2)) {
    // Known-but-unsupported names clamp too (other-host configs copied
    // into an environment file must not crash the binary).
    EXPECT_EQ(detail::resolve_override("avx2", &warning), widest_supported());
    EXPECT_FALSE(warning.empty());
  }
}

TEST(KernelDispatch, BannerNamesSelectionAndIsa) {
  KernelGuard guard;
  ASSERT_TRUE(set_kernel(Kernel::kBranchless));
  const std::string banner = kernel_banner();
  EXPECT_NE(banner.find("kernel branchless"), std::string::npos) << banner;
  EXPECT_NE(banner.find("isa "), std::string::npos) << banner;
}

TEST(KernelDispatch, CompiledOutSimdLoopsAreInert) {
  if (kSimdCompiledIn) GTEST_SKIP() << "SIMD TUs compiled in";
  // With MERGEPATH_SIMD=OFF the per-ISA entry points must be pure
  // fallthrough: no elements written, no cursor movement.
  const std::vector<std::int32_t> a(64, 1), b(64, 2);
  std::vector<std::int32_t> out(128, -1);
  const std::vector<float> fa(64, 1.0f), fb(64, 2.0f);
  std::vector<float> fout(128, -1.0f);
  for (Kernel k : {Kernel::kSse4, Kernel::kAvx2, Kernel::kAvx512}) {
    std::size_t i = 0, j = 0;
    EXPECT_EQ(detail::simd_loop_i32(k, a.data(), 64, b.data(), 64, &i, &j,
                                    out.data(), 128),
              0u);
    EXPECT_EQ(i, 0u);
    EXPECT_EQ(j, 0u);
    EXPECT_EQ(out[0], -1);
    std::size_t fi = 0, fj = 0;
    EXPECT_EQ(detail::simd_loop_f32(k, fa.data(), 64, fb.data(), 64, &fi,
                                    &fj, fout.data(), 128),
              0u);
    EXPECT_EQ(fi, 0u);
    EXPECT_EQ(fj, 0u);
    EXPECT_EQ(fout[0], -1.0f);
  }
}

// ---------------------------------------------------------------------------
// The compile-time trait: exactly the byte-exactness-provable cases.

using I32Iter = const std::int32_t*;
using I32Out = std::int32_t*;
struct ByHalf {
  bool operator()(int x, int y) const { return x / 2 < y / 2; }
};

static_assert(use_vector_merge_v<I32Iter, I32Iter, I32Out, std::less<>>);
static_assert(
    use_vector_merge_v<I32Iter, I32Iter, I32Out, std::less<std::int32_t>>);
static_assert(use_vector_merge_v<const std::uint64_t*, const std::uint64_t*,
                                 std::uint64_t*, std::less<>>);
static_assert(use_vector_merge_v<std::vector<std::int64_t>::const_iterator,
                                 std::vector<std::int64_t>::const_iterator,
                                 std::vector<std::int64_t>::iterator,
                                 std::less<>>);
// Floats under std::less: equal keys need not be bitwise identical
// (-0.0/+0.0), NaN breaks the strict weak order — the scalar kernel's
// take order must be kept.
static_assert(!use_vector_merge_v<const float*, const float*, float*,
                                  std::less<>>);
static_assert(!use_vector_merge_v<const double*, const double*, double*,
                                  std::less<>>);
// Floats under the opt-in TotalOrderLess are admitted (the total-order
// float mode); integer keys under TotalOrderLess compare with plain <,
// but the trait only certifies the float instantiations.
static_assert(use_vector_merge_v<const float*, const float*, float*,
                                 TotalOrderLess>);
static_assert(use_vector_merge_v<const double*, const double*, double*,
                                 TotalOrderLess>);
static_assert(use_vector_merge_v<std::vector<float>::const_iterator,
                                 std::vector<float>::const_iterator,
                                 std::vector<float>::iterator,
                                 TotalOrderLess>);
// Payload records: reordering equal keys would break A-priority stability.
static_assert(!use_vector_merge_v<const KeyedRecord*, const KeyedRecord*,
                                  KeyedRecord*, std::less<>>);
// Custom comparators define their own tie classes; only std::less is
// provably equivalent to the integer min/max network.
static_assert(!use_vector_merge_v<I32Iter, I32Iter, I32Out, std::greater<>>);
static_assert(!use_vector_merge_v<I32Iter, I32Iter, I32Out, ByHalf>);
// Non-contiguous iterators (SPM's ring views, lists) cannot feed vector
// loads.
static_assert(!use_vector_merge_v<std::list<std::int32_t>::const_iterator,
                                  std::list<std::int32_t>::const_iterator,
                                  I32Out, std::less<>>);
static_assert(!use_vector_merge_v<
              std::vector<std::int32_t>::const_reverse_iterator,
              std::vector<std::int32_t>::const_reverse_iterator, I32Out,
              std::less<>>);
// Mixed key types on the two inputs stay scalar.
static_assert(!use_vector_merge_v<const std::int32_t*, const std::int64_t*,
                                  std::int64_t*, std::less<>>);
static_assert(!use_vector_merge_v<const bool*, const bool*, bool*,
                                  std::less<>>);

TEST(KernelTrait, PayloadAndComparatorMergesStayStable) {
  // Property sweep: merges the vector path must refuse — payload records
  // and tie-heavy custom comparators — produce the exact stable result
  // whichever kernel is forced, because they never reach the SIMD loops.
  for (Kernel kernel : supported_kernels()) {
    KernelGuard guard;
    ASSERT_TRUE(set_kernel(kernel));

    const auto keyed = make_keyed_input(700, 600, 5, 0x57ab);
    std::vector<KeyedRecord> out(1300), want(1300);
    parallel_merge(keyed.a.data(), keyed.a.size(), keyed.b.data(),
                   keyed.b.size(), out.data(), Executor{nullptr, 4});
    std::merge(keyed.a.begin(), keyed.a.end(), keyed.b.begin(),
               keyed.b.end(), want.begin());
    ASSERT_EQ(out, want) << to_string(kernel);

    // Tie classes of width 2: ByHalf considers 2k and 2k+1 equal, so a
    // kernel that compared raw integers would order them differently.
    auto input = make_merge_input(Dist::kFewDuplicates, 800, 800, 0x71e5);
    std::sort(input.a.begin(), input.a.end(), ByHalf{});
    std::sort(input.b.begin(), input.b.end(), ByHalf{});
    std::vector<std::int32_t> got2(1600), want2(1600);
    parallel_merge(input.a.data(), 800, input.b.data(), 800, got2.data(),
                   Executor{nullptr, 4}, ByHalf{});
    std::merge(input.a.begin(), input.a.end(), input.b.begin(),
               input.b.end(), want2.begin(), ByHalf{});
    ASSERT_EQ(got2, want2) << to_string(kernel);
  }
}

// ---------------------------------------------------------------------------
// Hot-path equivalence: the wired call sites produce identical results
// whichever kernel dispatch selects.

TEST(KernelHotPaths, ParallelMergeMatchesReference) {
  const auto input = make_merge_input(Dist::kUniform, 100000, 90001, 0x9a7);
  const auto want = test::reference_merge(input.a, input.b);
  for (Kernel kernel : supported_kernels()) {
    KernelGuard guard;
    ASSERT_TRUE(set_kernel(kernel));
    std::vector<std::int32_t> out(want.size());
    parallel_merge(input.a.data(), input.a.size(), input.b.data(),
                   input.b.size(), out.data(), Executor{nullptr, 4});
    ASSERT_EQ(out, want) << to_string(kernel);
  }
}

TEST(KernelHotPaths, SegmentedMergeMatchesReferenceAcrossRingWraps) {
  // A tiny, non-power-of-two segment length forces many ring refills and
  // wrapped windows — the flat-window fast path must hand wrapped windows
  // back to the CyclicView scalar path without missing elements.
  const auto input = make_merge_input(Dist::kClustered, 7001, 6400, 0x5e6);
  const auto want = test::reference_merge(input.a, input.b);
  SegmentedConfig config;
  config.segment_length = 192;
  for (Kernel kernel : supported_kernels()) {
    KernelGuard guard;
    ASSERT_TRUE(set_kernel(kernel));
    std::vector<std::int32_t> out(want.size());
    segmented_parallel_merge(input.a.data(), input.a.size(), input.b.data(),
                             input.b.size(), out.data(), config,
                             Executor{nullptr, 3});
    ASSERT_EQ(out, want) << to_string(kernel);
  }
}

TEST(KernelHotPaths, MergeSortMatchesStdSort) {
  std::vector<std::int32_t> data = make_merge_input(
      Dist::kUniform, 50000, 0, 0xf00d).a;
  std::mt19937 rng(7);
  std::shuffle(data.begin(), data.end(), rng);
  auto want = data;
  std::sort(want.begin(), want.end());
  for (Kernel kernel : supported_kernels()) {
    KernelGuard guard;
    ASSERT_TRUE(set_kernel(kernel));
    auto got = data;
    parallel_merge_sort(got.data(), got.size(), Executor{nullptr, 4});
    ASSERT_EQ(got, want) << to_string(kernel);
  }
}

TEST(KernelHotPaths, MultiwayPairwiseFallbackAndLoserTreeMatch) {
  const auto input = make_merge_input(Dist::kInterleaved, 40000, 35000, 0x2a);
  const auto want2 = test::reference_merge(input.a, input.b);
  const auto extra = make_merge_input(Dist::kUniform, 20000, 0, 0x2b).a;
  std::vector<std::int32_t> want3(want2.size() + extra.size());
  std::merge(want2.begin(), want2.end(), extra.begin(), extra.end(),
             want3.begin());
  for (Kernel kernel : supported_kernels()) {
    KernelGuard guard;
    ASSERT_TRUE(set_kernel(kernel));
    // k=2 takes the pairwise parallel_merge fallback (vector path).
    const std::vector<std::vector<std::int32_t>> two{input.a, input.b};
    ASSERT_EQ(parallel_multiway_merge(two, Executor{nullptr, 4}), want2)
        << to_string(kernel);
    // k=3 stays on the LoserTree; same bytes either way.
    const std::vector<std::vector<std::int32_t>> three{input.a, input.b,
                                                       extra};
    ASSERT_EQ(parallel_multiway_merge(three, Executor{nullptr, 4}), want3)
        << to_string(kernel);
  }
}

TEST(KernelHotPaths, InstrumentedMultiwayKeepsLoserTreeCounts) {
  // The pairwise fallback is forbidden when instrumentation is on: the
  // modelled compare counts must reflect the log-k selection tree.
  const auto input = make_merge_input(Dist::kUniform, 5000, 5000, 0x77);
  const std::vector<std::vector<std::int32_t>> two{input.a, input.b};
  std::vector<std::span<const std::int32_t>> views{
      {input.a.data(), input.a.size()}, {input.b.data(), input.b.size()}};
  std::vector<std::int32_t> out(10000);
  std::vector<OpCounts> ops(4);
  parallel_multiway_merge(std::span<const std::span<const std::int32_t>>(
                              views.data(), views.size()),
                          out.data(), Executor{nullptr, 4}, std::less<>{},
                          std::span<OpCounts>(ops));
  ASSERT_EQ(out, test::reference_merge(input.a, input.b));
  std::size_t moves = 0;
  for (const auto& o : ops) moves += o.moves;
  EXPECT_EQ(moves, 10000u);
}

}  // namespace
}  // namespace mp::kernels
