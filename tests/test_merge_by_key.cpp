// Tests for core/merge_by_key.hpp: key/value merging, bounded first-k
// merges, and the O(log) order statistic.

#include "core/merge_by_key.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "test_support.hpp"
#include "util/data_gen.hpp"

namespace mp {
namespace {

// Values tag their origin so stability and pairing can be verified.
std::vector<std::uint32_t> tag_values(std::size_t n, std::uint32_t origin) {
  std::vector<std::uint32_t> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = (origin << 28) | static_cast<std::uint32_t>(i);
  return v;
}

class MergeByKeyParam
    : public ::testing::TestWithParam<std::tuple<Dist, unsigned>> {};

TEST_P(MergeByKeyParam, KeysMatchPlainMergeAndValuesFollowKeys) {
  const auto [dist, threads] = GetParam();
  const auto input = make_merge_input(dist, 1000, 700, 171);
  const auto values_a = tag_values(1000, 0);
  const auto values_b = tag_values(700, 1);

  const auto [keys, values] = parallel_merge_by_key(
      input.a, values_a, input.b, values_b, Executor{nullptr, threads});

  EXPECT_EQ(keys, test::reference_merge(input.a, input.b));
  // Every value still sits next to its original key.
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::uint32_t origin = values[i] >> 28;
    const std::uint32_t index = values[i] & 0x0fffffffu;
    const std::int32_t original_key =
        origin == 0 ? input.a[index] : input.b[index];
    ASSERT_EQ(keys[i], original_key) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DistsAndThreads, MergeByKeyParam,
    ::testing::Combine(::testing::ValuesIn(kAllDists),
                       ::testing::Values(1u, 4u, 9u)),
    [](const auto& pinfo) {
      return to_string(std::get<0>(pinfo.param)) + "_p" +
             std::to_string(std::get<1>(pinfo.param));
    });

TEST(MergeByKey, StableOnTies) {
  // All keys equal: output values must be A's in order, then B's in order.
  const std::vector<std::int32_t> keys_a(50, 7), keys_b(30, 7);
  const auto values_a = tag_values(50, 0);
  const auto values_b = tag_values(30, 1);
  const auto [keys, values] = parallel_merge_by_key(
      keys_a, values_a, keys_b, values_b, Executor{nullptr, 4});
  std::vector<std::uint32_t> expected = values_a;
  expected.insert(expected.end(), values_b.begin(), values_b.end());
  EXPECT_EQ(values, expected);
  EXPECT_EQ(keys.size(), 80u);
}

TEST(MergeByKey, EmptySides) {
  const std::vector<std::int32_t> keys{1, 2, 3};
  const std::vector<std::uint32_t> vals{10, 20, 30};
  const std::vector<std::int32_t> no_keys;
  const std::vector<std::uint32_t> no_vals;
  auto [k1, v1] = parallel_merge_by_key(keys, vals, no_keys, no_vals);
  EXPECT_EQ(k1, keys);
  EXPECT_EQ(v1, vals);
  auto [k2, v2] = parallel_merge_by_key(no_keys, no_vals, keys, vals);
  EXPECT_EQ(k2, keys);
  EXPECT_EQ(v2, vals);
}

TEST(MergeByKey, HeavyPayloadType) {
  // Values of a non-trivial type (strings) to check the value path never
  // assumes trivially-copyable payloads.
  const std::vector<std::int32_t> keys_a{1, 3, 5};
  const std::vector<std::int32_t> keys_b{2, 4, 6};
  const std::vector<std::string> values_a{"one", "three", "five"};
  const std::vector<std::string> values_b{"two", "four", "six"};
  const auto [keys, values] =
      parallel_merge_by_key(keys_a, values_a, keys_b, values_b);
  const std::vector<std::string> expected{"one", "two",  "three",
                                          "four", "five", "six"};
  EXPECT_EQ(values, expected);
}

TEST(MergeFirstK, PrefixOfFullMerge) {
  const auto input = make_merge_input(Dist::kClustered, 800, 600, 173);
  const auto full = test::reference_merge(input.a, input.b);
  for (std::size_t k : {0u, 1u, 7u, 400u, 1399u, 1400u}) {
    std::vector<std::int32_t> out(k);
    merge_first_k(input.a.data(), 800, input.b.data(), 600, out.data(), k,
                  Executor{nullptr, 4});
    const std::vector<std::int32_t> expected(full.begin(),
                                             full.begin() +
                                                 static_cast<std::ptrdiff_t>(k));
    EXPECT_EQ(out, expected) << "k=" << k;
  }
}

TEST(MergeFirstK, TopKUseCase) {
  // k smallest of two large arrays without touching the rest.
  const auto input = make_merge_input(Dist::kUniform, 100000, 100000, 179);
  std::vector<std::int32_t> top10(10);
  merge_first_k(input.a.data(), 100000, input.b.data(), 100000,
                top10.data(), 10);
  const auto full = test::reference_merge(input.a, input.b);
  EXPECT_TRUE(std::equal(top10.begin(), top10.end(), full.begin()));
}

TEST(KthSmallest, MatchesMergedSequenceEverywhere) {
  for (Dist dist : kAllDists) {
    const auto input = make_merge_input(dist, 300, 200, 181);
    const auto full = test::reference_merge(input.a, input.b);
    for (std::size_t rank = 0; rank < full.size(); rank += 13) {
      EXPECT_EQ(kth_smallest(input.a.data(), 300, input.b.data(), 200, rank),
                full[rank])
          << to_string(dist) << " rank=" << rank;
    }
    // Boundary ranks.
    EXPECT_EQ(kth_smallest(input.a.data(), 300, input.b.data(), 200, 0),
              full.front());
    EXPECT_EQ(kth_smallest(input.a.data(), 300, input.b.data(), 200,
                           full.size() - 1),
              full.back());
  }
}

TEST(KthSmallest, MedianOfTwoArrays) {
  // The classic interview formulation, O(log) here.
  const std::vector<std::int32_t> a{1, 3, 8, 9, 15};
  const std::vector<std::int32_t> b{7, 11, 18, 19, 21, 25};
  // Union sorted: 1 3 7 8 9 11 15 18 19 21 25 -> median (rank 5) = 11.
  EXPECT_EQ(kth_smallest(a.data(), a.size(), b.data(), b.size(), 5), 11);
}

}  // namespace
}  // namespace mp
