// Executable verification of the paper's Section II structure theory
// (experiment E9): Lemmas 1-4, Propositions 10-13, Corollary 12 and
// Theorem 5, checked exhaustively on the Merge Matrix reference model.

#include "core/merge_matrix.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/sequential_merge.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace mp {
namespace {

// Fixture generating duplicate-heavy random sorted pairs of a given shape.
class MatrixProperty : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  struct Instance {
    std::vector<std::int32_t> a, b;
  };

  std::vector<Instance> instances() {
    const auto [m, n] = GetParam();
    Xoshiro256 rng(static_cast<std::uint64_t>(m) * 7919 +
                   static_cast<std::uint64_t>(n));
    std::vector<Instance> out;
    for (int trial = 0; trial < 25; ++trial) {
      Instance inst;
      inst.a.resize(static_cast<std::size_t>(m));
      inst.b.resize(static_cast<std::size_t>(n));
      for (auto& x : inst.a) x = static_cast<std::int32_t>(rng.bounded(6));
      for (auto& x : inst.b) x = static_cast<std::int32_t>(rng.bounded(6));
      std::sort(inst.a.begin(), inst.a.end());
      std::sort(inst.b.begin(), inst.b.end());
      out.push_back(std::move(inst));
    }
    return out;
  }
};

// Lemma 1: traversing the path (down = take A, right = take B) yields the
// stable merge.
TEST_P(MatrixProperty, Lemma1PathTraversalYieldsMerge) {
  for (const auto& inst : instances()) {
    const MergeMatrix<std::int32_t> matrix(inst.a, inst.b);
    const auto path = matrix.build_path();
    std::vector<std::int32_t> merged;
    for (std::size_t s = 1; s < path.size(); ++s) {
      if (path[s].i > path[s - 1].i)
        merged.push_back(inst.a[path[s - 1].i]);
      else
        merged.push_back(inst.b[path[s - 1].j]);
    }
    EXPECT_EQ(merged, test::reference_merge(inst.a, inst.b));
  }
}

// Lemma 8: the d'th point of the path lies on grid cross diagonal d.
TEST_P(MatrixProperty, Lemma8PathPointOnItsDiagonal) {
  for (const auto& inst : instances()) {
    const MergeMatrix<std::int32_t> matrix(inst.a, inst.b);
    const auto path = matrix.build_path();
    for (std::size_t d = 0; d < path.size(); ++d)
      EXPECT_EQ(path[d].diagonal(), d);
  }
}

// Propositions 10 & 11: M[i,j]=1 fills down-left; M[i,j]=0 fills up-right.
TEST_P(MatrixProperty, Propositions10And11MonotoneRegions) {
  for (const auto& inst : instances()) {
    const MergeMatrix<std::int32_t> matrix(inst.a, inst.b);
    for (std::size_t i = 0; i < matrix.rows(); ++i) {
      for (std::size_t j = 0; j < matrix.cols(); ++j) {
        if (matrix.at(i, j)) {
          for (std::size_t k = i; k < matrix.rows(); ++k)
            for (std::size_t l = 0; l <= j; ++l)
              EXPECT_TRUE(matrix.at(k, l));
        } else {
          for (std::size_t k = 0; k <= i; ++k)
            for (std::size_t l = j; l < matrix.cols(); ++l)
              EXPECT_FALSE(matrix.at(k, l));
        }
      }
    }
  }
}

// Corollary 12: every matrix cross diagonal, read bottom-left to top-right,
// is monotonically non-increasing (all 1s then all 0s).
TEST_P(MatrixProperty, Corollary12DiagonalsNonIncreasing) {
  for (const auto& inst : instances()) {
    const MergeMatrix<std::int32_t> matrix(inst.a, inst.b);
    if (matrix.rows() == 0 || matrix.cols() == 0) continue;
    for (std::size_t d = 0; d < matrix.rows() + matrix.cols() - 1; ++d) {
      const auto entries = matrix.diagonal_entries(d);
      for (std::size_t k = 1; k < entries.size(); ++k)
        EXPECT_LE(entries[k], entries[k - 1]) << "diag " << d << " pos " << k;
    }
  }
}

// Lemmas 2-4 + Theorem 5: any segmentation of the path yields contiguous,
// disjoint, order-respecting sub-array pairs whose independent merges
// concatenate to the full merge.
TEST_P(MatrixProperty, Theorem5SegmentsMergeIndependently) {
  Xoshiro256 cut_rng(42);
  for (const auto& inst : instances()) {
    const MergeMatrix<std::int32_t> matrix(inst.a, inst.b);
    const auto path = matrix.build_path();
    const std::size_t total = inst.a.size() + inst.b.size();

    // Random segmentation: 0 = start, then random interior cuts, then end.
    std::vector<std::size_t> cuts{0, total};
    for (int c = 0; c < 3; ++c)
      cuts.push_back(cut_rng.bounded(total + 1));
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

    std::vector<std::int32_t> result(total);
    for (std::size_t c = 1; c < cuts.size(); ++c) {
      const PathPoint lo = path[cuts[c - 1]];
      const PathPoint hi = path[cuts[c]];
      // Lemma 2/3: contiguous, disjoint sub-arrays.
      ASSERT_GE(hi.i, lo.i);
      ASSERT_GE(hi.j, lo.j);
      std::size_t i = 0, j = 0;
      merge_steps(inst.a.data() + lo.i, hi.i - lo.i, inst.b.data() + lo.j,
                  hi.j - lo.j, &i, &j, result.data() + lo.diagonal(),
                  hi.diagonal() - lo.diagonal());
    }
    // Theorem 5 / Corollary 6: concatenation equals the full stable merge.
    EXPECT_EQ(result, test::reference_merge(inst.a, inst.b));

    // Lemma 4: every element of a later segment >= every element of an
    // earlier one — equivalent to the concatenated result being sorted,
    // which the equality above already guarantees; assert explicitly.
    EXPECT_TRUE(std::is_sorted(result.begin(), result.end()));
  }
}

// Proposition 13: the path point on diagonal d is the highest point whose
// left neighbour cell is 1, or the lowest point of the diagonal otherwise.
TEST_P(MatrixProperty, Proposition13TransitionPointCharacterisation) {
  for (const auto& inst : instances()) {
    const MergeMatrix<std::int32_t> matrix(inst.a, inst.b);
    const auto path = matrix.build_path();
    const std::size_t m = matrix.rows(), n = matrix.cols();
    for (std::size_t d = 0; d <= m + n; ++d) {
      const PathPoint pt = path[d];
      // Path-point conditions in matrix terms: the cell left of (i-1, j)
      // boundary... expressed via the co-rank characterisation:
      if (pt.i > 0 && pt.j < n) {
        // M[i-1, j] must be 0: A[i-1] <= B[j].
        EXPECT_FALSE(matrix.at(pt.i - 1, pt.j));
      }
      if (pt.j > 0 && pt.i < m) {
        // M[i, j-1] must be 1: A[i] > B[j-1].
        EXPECT_TRUE(matrix.at(pt.i, pt.j - 1));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatrixProperty,
    ::testing::Values(std::tuple(0, 0), std::tuple(0, 6), std::tuple(6, 0),
                      std::tuple(1, 1), std::tuple(2, 9), std::tuple(9, 2),
                      std::tuple(6, 6), std::tuple(10, 10),
                      std::tuple(12, 5)),
    [](const auto& pinfo) {
      return "m" + std::to_string(std::get<0>(pinfo.param)) + "_n" +
             std::to_string(std::get<1>(pinfo.param));
    });

TEST(MergeMatrix, KnownSmallExample) {
  // Hand-checked example: A = [3, 5], B = [1, 4].
  const MergeMatrix<std::int32_t> matrix({3, 5}, {1, 4});
  EXPECT_TRUE(matrix.at(0, 0));   // 3 > 1
  EXPECT_FALSE(matrix.at(0, 1));  // 3 > 4 ? no
  EXPECT_TRUE(matrix.at(1, 0));   // 5 > 1
  EXPECT_TRUE(matrix.at(1, 1));   // 5 > 4

  // Merge order: 1(B) 3(A) 4(B) 5(A) => path R D R D.
  const auto path = matrix.build_path();
  const std::vector<PathPoint> expected{
      {0, 0}, {0, 1}, {1, 1}, {1, 2}, {2, 2}};
  EXPECT_EQ(path, expected);
}

}  // namespace
}  // namespace mp
