// Tests for core/merge_path.hpp: the diagonal binary search (Theorem 14)
// and merge-path partitioning (Theorem 9 / Corollary 7), cross-checked
// against the explicit Merge Matrix reference model on exhaustive small
// inputs and against invariants on large random ones.

#include "core/merge_path.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/merge_matrix.hpp"
#include "test_support.hpp"
#include "util/data_gen.hpp"
#include "util/rng.hpp"

namespace mp {
namespace {

TEST(DiagonalIntersection, EmptyArrays) {
  const std::vector<std::int32_t> a, b;
  EXPECT_EQ(diagonal_intersection(a.data(), 0, b.data(), 0, 0), 0u);
}

TEST(DiagonalIntersection, OneEmptySide) {
  const std::vector<std::int32_t> a{1, 2, 3};
  const std::vector<std::int32_t> b;
  for (std::size_t d = 0; d <= 3; ++d) {
    EXPECT_EQ(diagonal_intersection(a.data(), 3, b.data(), 0, d), d);
    EXPECT_EQ(diagonal_intersection(b.data(), 0, a.data(), 3, d), 0u);
  }
}

TEST(DiagonalIntersection, EndpointsAlwaysFixed) {
  const auto input = make_merge_input(Dist::kUniform, 100, 73, 1);
  const std::size_t m = input.a.size(), n = input.b.size();
  EXPECT_EQ(diagonal_intersection(input.a.data(), m, input.b.data(), n, 0),
            0u);
  EXPECT_EQ(
      diagonal_intersection(input.a.data(), m, input.b.data(), n, m + n), m);
}

TEST(DiagonalIntersection, DisjointLowTakesAllOfAFirst) {
  // All of A below all of B: path runs straight down, so co-rank(d) = d
  // until A is exhausted.
  const auto input = make_merge_input(Dist::kDisjointLow, 50, 50, 2);
  for (std::size_t d = 0; d <= 100; ++d) {
    const std::size_t i = diagonal_intersection(input.a.data(), 50,
                                                input.b.data(), 50, d);
    EXPECT_EQ(i, std::min<std::size_t>(d, 50)) << "diag " << d;
  }
}

TEST(DiagonalIntersection, DisjointHighTakesAllOfBFirst) {
  const auto input = make_merge_input(Dist::kDisjointHigh, 50, 50, 3);
  for (std::size_t d = 0; d <= 100; ++d) {
    const std::size_t i = diagonal_intersection(input.a.data(), 50,
                                                input.b.data(), 50, d);
    EXPECT_EQ(i, d > 50 ? d - 50 : 0) << "diag " << d;
  }
}

TEST(DiagonalIntersection, TiesGoToAFirst) {
  const std::vector<std::int32_t> a{5, 5, 5};
  const std::vector<std::int32_t> b{5, 5, 5};
  // Stable A-priority: the first three path steps consume A entirely.
  for (std::size_t d = 0; d <= 6; ++d) {
    EXPECT_EQ(diagonal_intersection(a.data(), 3, b.data(), 3, d),
              std::min<std::size_t>(d, 3));
  }
}

TEST(DiagonalIntersection, InstrumentCountsLogSteps) {
  const auto input = make_merge_input(Dist::kUniform, 1 << 16, 1 << 16, 4);
  OpCounts ops;
  diagonal_intersection(input.a.data(), input.a.size(), input.b.data(),
                        input.b.size(), input.a.size(), std::less<>{}, &ops);
  EXPECT_GT(ops.search_steps, 0u);
  EXPECT_LE(ops.search_steps, 17u);  // log2(min(m,n)) + 1
}

// --- Exhaustive cross-check against the Merge Matrix reference model.

class DiagonalVsMatrix : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(DiagonalVsMatrix, MatchesReferencePathOnAllDiagonals) {
  const auto [m, n] = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(m) * 1315423911u +
                 static_cast<std::uint64_t>(n));
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::int32_t> a(static_cast<std::size_t>(m));
    std::vector<std::int32_t> b(static_cast<std::size_t>(n));
    // Small value universe => many ties, stressing stability handling.
    for (auto& x : a) x = static_cast<std::int32_t>(rng.bounded(8));
    for (auto& x : b) x = static_cast<std::int32_t>(rng.bounded(8));
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());

    const MergeMatrix<std::int32_t> matrix(a, b);
    const auto path = matrix.build_path();
    for (std::size_t d = 0; d <= a.size() + b.size(); ++d) {
      const PathPoint expected = path[d];
      const PathPoint actual =
          path_point_on_diagonal(a.data(), a.size(), b.data(), b.size(), d);
      EXPECT_EQ(actual, expected)
          << "m=" << m << " n=" << n << " trial=" << trial << " diag=" << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallShapes, DiagonalVsMatrix,
    ::testing::Values(std::tuple(0, 0), std::tuple(0, 5), std::tuple(5, 0),
                      std::tuple(1, 1), std::tuple(1, 7), std::tuple(7, 1),
                      std::tuple(4, 4), std::tuple(8, 3), std::tuple(3, 8),
                      std::tuple(16, 16), std::tuple(13, 2),
                      std::tuple(2, 13)),
    [](const auto& pinfo) {
      return "m" + std::to_string(std::get<0>(pinfo.param)) + "_n" +
             std::to_string(std::get<1>(pinfo.param));
    });

// --- Partition properties on every distribution.

class PartitionProperty
    : public ::testing::TestWithParam<std::tuple<Dist, int>> {};

TEST_P(PartitionProperty, PartitionIsValidAndBalanced) {
  const auto [dist, parts] = GetParam();
  const auto input = make_merge_input(dist, 1000, 700, 7);
  const std::size_t m = input.a.size(), n = input.b.size();
  const auto points =
      partition_merge_path(input.a.data(), m, input.b.data(), n,
                           static_cast<std::size_t>(parts));

  ASSERT_EQ(points.size(), static_cast<std::size_t>(parts) + 1);
  EXPECT_TRUE(validate_partition(input.a.data(), m, input.b.data(), n,
                                 points));
  // Corollary 7: segment lengths differ by at most one.
  std::size_t lo = m + n, hi = 0;
  for (std::size_t k = 1; k < points.size(); ++k) {
    const std::size_t len = points[k].diagonal() - points[k - 1].diagonal();
    lo = std::min(lo, len);
    hi = std::max(hi, len);
  }
  EXPECT_LE(hi - lo, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllDists, PartitionProperty,
    ::testing::Combine(::testing::ValuesIn(kAllDists),
                       ::testing::Values(1, 2, 3, 7, 12, 64)),
    [](const auto& pinfo) {
      return to_string(std::get<0>(pinfo.param)) + "_p" +
             std::to_string(std::get<1>(pinfo.param));
    });

TEST(ValidatePartition, RejectsBrokenPartitions) {
  const auto input = make_merge_input(Dist::kUniform, 100, 100, 9);
  auto points = partition_merge_path(input.a.data(), 100, input.b.data(),
                                     100, std::size_t{4});
  ASSERT_TRUE(validate_partition(input.a.data(), 100, input.b.data(), 100,
                                 points));

  auto missing_end = points;
  missing_end.back() = PathPoint{99, 100};
  EXPECT_FALSE(validate_partition(input.a.data(), 100, input.b.data(), 100,
                                  missing_end));

  auto non_monotone = points;
  if (non_monotone[1].i > 0 && non_monotone[2].i < 100) {
    std::swap(non_monotone[1], non_monotone[2]);
    EXPECT_FALSE(validate_partition(input.a.data(), 100, input.b.data(), 100,
                                    non_monotone));
  }

  // A point with the right diagonal but the wrong co-rank is not on the
  // path (unless the data happens to make it ambiguous, which uniform
  // 32-bit values essentially never do).
  auto off_path = points;
  if (off_path[2].i > 0 && off_path[2].j < 100) {
    off_path[2].i -= 1;
    off_path[2].j += 1;
    EXPECT_FALSE(validate_partition(input.a.data(), 100, input.b.data(), 100,
                                    off_path));
  }
}

}  // namespace
}  // namespace mp
