// Tests for core/merge_soa.hpp: multi-column SoA merging — keys match the
// plain merge, every column follows its key, heterogeneous column types,
// and the multiway one-pass sort added alongside.

#include "core/merge_soa.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/multiway_merge.hpp"
#include "test_support.hpp"
#include "util/data_gen.hpp"
#include "util/rng.hpp"

namespace mp {
namespace {

TEST(MergeSoa, KeysAndTwoColumnsTravelTogether) {
  const auto input = make_merge_input(Dist::kFewDuplicates, 800, 600, 1201);
  const std::size_t m = input.a.size(), n = input.b.size();
  // Column 1: origin-tagged ints; column 2: doubles derived from the key.
  std::vector<std::uint32_t> tag_a(m), tag_b(n);
  std::vector<double> val_a(m), val_b(n);
  for (std::size_t i = 0; i < m; ++i) {
    tag_a[i] = (0u << 24) | static_cast<std::uint32_t>(i);
    val_a[i] = input.a[i] * 1.5;
  }
  for (std::size_t j = 0; j < n; ++j) {
    tag_b[j] = (1u << 24) | static_cast<std::uint32_t>(j);
    val_b[j] = input.b[j] * 1.5;
  }

  std::vector<std::int32_t> keys_out(m + n);
  std::vector<std::uint32_t> tags_out(m + n);
  std::vector<double> vals_out(m + n);
  for (unsigned p : {1u, 4u, 9u}) {
    parallel_merge_soa(
        input.a.data(), m, input.b.data(), n, keys_out.data(),
        std::tuple{SoaColumn<std::uint32_t>{tag_a.data(), tag_b.data(),
                                            tags_out.data()},
                   SoaColumn<double>{val_a.data(), val_b.data(),
                                     vals_out.data()}},
        Executor{nullptr, p});

    EXPECT_EQ(keys_out, test::reference_merge(input.a, input.b)) << p;
    for (std::size_t s = 0; s < keys_out.size(); ++s) {
      const bool from_b = (tags_out[s] >> 24) == 1;
      const std::uint32_t idx = tags_out[s] & 0xffffffu;
      const std::int32_t original =
          from_b ? input.b[idx] : input.a[idx];
      ASSERT_EQ(keys_out[s], original) << "p=" << p << " s=" << s;
      ASSERT_EQ(vals_out[s], original * 1.5) << "p=" << p << " s=" << s;
    }
    // Stability: equal keys keep A-then-B, input order within each.
    for (std::size_t s = 1; s < keys_out.size(); ++s) {
      if (keys_out[s - 1] == keys_out[s]) {
        ASSERT_LT(tags_out[s - 1], tags_out[s]) << "p=" << p;
      }
    }
  }
}

TEST(MergeSoa, StringColumn) {
  const std::vector<std::int32_t> ka{1, 3}, kb{2, 4};
  const std::vector<std::string> sa{"one", "three"}, sb{"two", "four"};
  std::vector<std::int32_t> keys(4);
  std::vector<std::string> strs(4);
  parallel_merge_soa(ka.data(), 2, kb.data(), 2, keys.data(),
                     std::tuple{SoaColumn<std::string>{sa.data(), sb.data(),
                                                       strs.data()}});
  const std::vector<std::string> expected{"one", "two", "three", "four"};
  EXPECT_EQ(strs, expected);
}

TEST(MergeSoa, NoColumnsDegeneratesToPlainMerge) {
  const auto input = make_merge_input(Dist::kUniform, 1000, 1000, 1203);
  std::vector<std::int32_t> out(2000);
  parallel_merge_soa(input.a.data(), 1000, input.b.data(), 1000, out.data(),
                     std::tuple<>{}, Executor{nullptr, 4});
  EXPECT_EQ(out, test::reference_merge(input.a, input.b));
}

TEST(MergeSoa, EmptySides) {
  const std::vector<std::int32_t> keys{5, 6};
  const std::vector<std::int32_t> vals{50, 60};
  std::vector<std::int32_t> keys_out(2), vals_out(2);
  parallel_merge_soa(keys.data(), 2, keys.data(), 0, keys_out.data(),
                     std::tuple{SoaColumn<std::int32_t>{
                         vals.data(), vals.data(), vals_out.data()}});
  EXPECT_EQ(vals_out, vals);
}

// --- multiway_merge_sort (one-pass k-way sort, added in multiway_merge).

TEST(MultiwayMergeSort, SortsAcrossSizesAndThreads) {
  for (std::size_t n : {0u, 1u, 100u, 4097u, 100000u}) {
    for (unsigned p : {1u, 4u, 13u}) {
      auto data = make_unsorted_values(n, 1300 + n + p);
      auto expected = data;
      std::sort(expected.begin(), expected.end());
      multiway_merge_sort(data.data(), n, Executor{nullptr, p});
      EXPECT_EQ(data, expected) << "n=" << n << " p=" << p;
    }
  }
}

TEST(MultiwayMergeSort, IsStable) {
  Xoshiro256 rng(1301);
  std::vector<KeyedRecord> data(8000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i].key = static_cast<std::int32_t>(rng.bounded(9));
    data[i].payload = static_cast<std::uint32_t>(i);
  }
  auto expected = data;
  std::stable_sort(expected.begin(), expected.end());
  multiway_merge_sort(data.data(), data.size(), Executor{nullptr, 7});
  EXPECT_EQ(data, expected);
}

TEST(MultiwayMergeSort, AgreesWithPairwiseSort) {
  auto d1 = make_unsorted_values(60000, 1303);
  auto d2 = d1;
  parallel_merge_sort(d1.data(), d1.size(), Executor{nullptr, 8});
  multiway_merge_sort(d2.data(), d2.size(), Executor{nullptr, 8});
  EXPECT_EQ(d1, d2);
}

}  // namespace
}  // namespace mp
