// Tests for core/merge_sort.hpp: the from-scratch sequential merge sort,
// the flattened balanced merge round, and the Section III parallel merge
// sort (correctness, stability, balance).

#include "core/merge_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "test_support.hpp"
#include "util/data_gen.hpp"
#include "util/rng.hpp"

namespace mp {
namespace {

TEST(SequentialMergeSort, SortsRandomData) {
  for (std::size_t n : {0u, 1u, 2u, 23u, 24u, 25u, 1000u, 65536u}) {
    auto data = make_unsorted_values(n, 1000 + n);
    auto expected = data;
    std::sort(expected.begin(), expected.end());
    sequential_merge_sort(std::span<std::int32_t>(data));
    EXPECT_EQ(data, expected) << "n=" << n;
  }
}

TEST(SequentialMergeSort, SortsAdversarialPatterns) {
  // Already sorted, reverse sorted, constant, sawtooth.
  std::vector<std::vector<std::int32_t>> cases;
  std::vector<std::int32_t> v(1000);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = static_cast<std::int32_t>(i);
  cases.push_back(v);
  std::reverse(v.begin(), v.end());
  cases.push_back(v);
  cases.emplace_back(1000, 7);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = static_cast<std::int32_t>(i % 17);
  cases.push_back(v);

  for (auto& data : cases) {
    auto expected = data;
    std::sort(expected.begin(), expected.end());
    sequential_merge_sort(std::span<std::int32_t>(data));
    EXPECT_EQ(data, expected);
  }
}

TEST(SequentialMergeSort, IsStable) {
  // Records with few distinct keys; payload records input position.
  Xoshiro256 rng(7);
  std::vector<KeyedRecord> data(2000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i].key = static_cast<std::int32_t>(rng.bounded(5));
    data[i].payload = static_cast<std::uint32_t>(i);
  }
  auto expected = data;
  std::stable_sort(expected.begin(), expected.end());
  std::vector<KeyedRecord> scratch(data.size());
  sequential_merge_sort(data.data(), scratch.data(), data.size());
  EXPECT_EQ(data, expected);
}

TEST(MergeRoundBalanced, MergesAdjacentPairs) {
  // Buffer with four sorted runs of uneven sizes.
  Xoshiro256 rng(11);
  std::vector<std::int32_t> buf;
  std::vector<::mp::Run> runs;
  for (std::size_t len : {100u, 3u, 57u, 200u}) {
    const std::size_t begin = buf.size();
    for (std::size_t i = 0; i < len; ++i)
      buf.push_back(static_cast<std::int32_t>(rng.bounded(1000)));
    std::sort(buf.begin() + static_cast<std::ptrdiff_t>(begin), buf.end());
    runs.push_back(::mp::Run{begin, buf.size()});
  }
  std::vector<std::int32_t> dst(buf.size());
  const auto merged = merge_round_balanced(buf.data(), dst.data(), runs,
                                           Executor{nullptr, 4});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_TRUE(std::is_sorted(dst.begin(), dst.begin() + 103));
  EXPECT_TRUE(std::is_sorted(dst.begin() + 103, dst.end()));
  // Same multiset per merged pair.
  auto lhs = std::vector<std::int32_t>(buf.begin(), buf.begin() + 103);
  auto rhs = std::vector<std::int32_t>(dst.begin(), dst.begin() + 103);
  std::sort(lhs.begin(), lhs.end());
  std::sort(rhs.begin(), rhs.end());
  EXPECT_EQ(lhs, rhs);
}

TEST(MergeRoundBalanced, OddRunCountCopiesTrailer) {
  std::vector<std::int32_t> buf{1, 3, 5, 2, 4, 6, 7, 8, 9};
  const std::vector<::mp::Run> runs{{0, 3}, {3, 6}, {6, 9}};
  std::vector<std::int32_t> dst(9);
  const auto merged =
      merge_round_balanced(buf.data(), dst.data(), runs, Executor{nullptr, 3});
  ASSERT_EQ(merged.size(), 2u);
  const std::vector<std::int32_t> expected{1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(dst, expected);
}

class ParallelSortParam
    : public ::testing::TestWithParam<std::tuple<std::size_t, unsigned>> {};

TEST_P(ParallelSortParam, SortsCorrectly) {
  const auto [n, threads] = GetParam();
  auto data = make_unsorted_values(n, 2000 + n + threads);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  parallel_merge_sort(data.data(), n, Executor{nullptr, threads});
  EXPECT_EQ(data, expected);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndThreads, ParallelSortParam,
    ::testing::Combine(::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{100}, std::size_t{1000},
                                         std::size_t{4097},
                                         std::size_t{100000}),
                       ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u)),
    [](const auto& pinfo) {
      return "n" + std::to_string(std::get<0>(pinfo.param)) + "_p" +
             std::to_string(std::get<1>(pinfo.param));
    });

TEST(ParallelMergeSort, IsStable) {
  Xoshiro256 rng(17);
  std::vector<KeyedRecord> data(5000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i].key = static_cast<std::int32_t>(rng.bounded(9));
    data[i].payload = static_cast<std::uint32_t>(i);
  }
  auto expected = data;
  std::stable_sort(expected.begin(), expected.end());
  parallel_merge_sort(data.data(), data.size(), Executor{nullptr, 6});
  EXPECT_EQ(data, expected);
}

TEST(ParallelMergeSort, SpanFrontEndAndComparator) {
  auto data = make_unsorted_values(10000, 23);
  auto expected = data;
  std::sort(expected.begin(), expected.end(), std::greater<>{});
  parallel_merge_sort(std::span<std::int32_t>(data), Executor{nullptr, 4},
                      std::greater<>{});
  EXPECT_EQ(data, expected);
}

TEST(ParallelMergeSort, BalancedWorkAcrossLanes) {
  // Every lane's move count should be within a small factor of the mean —
  // the flattened rounds guarantee near-perfect balance (Corollary 7
  // applied per round).
  const std::size_t n = 1 << 16;
  auto data = make_unsorted_values(n, 29);
  const unsigned p = 8;
  ThreadPool serial(0);
  std::vector<OpCounts> counts(p);
  parallel_merge_sort(data.data(), n, Executor{&serial, p}, std::less<>{},
                      std::span<OpCounts>(counts));
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
  std::uint64_t lo = ~0ull, hi = 0;
  for (const auto& c : counts) {
    lo = std::min(lo, c.total());
    hi = std::max(hi, c.total());
  }
  EXPECT_LT(static_cast<double>(hi),
            1.25 * static_cast<double>(lo) + 1000.0)
      << "lane op counts spread too wide: " << lo << " .. " << hi;
}

TEST(ParallelMergeSort, ManyDuplicatesAcrossManyThreads) {
  std::vector<std::int32_t> data(50000);
  Xoshiro256 rng(31);
  for (auto& x : data) x = static_cast<std::int32_t>(rng.bounded(3));
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  parallel_merge_sort(data.data(), data.size(), Executor{nullptr, 16});
  EXPECT_EQ(data, expected);
}

#ifdef _OPENMP
TEST(ParallelMergeSortOpenMP, MatchesThreadPoolBackend) {
  for (std::size_t n : {0u, 1u, 1000u, 65537u}) {
    auto d1 = make_unsorted_values(n, 3000 + n);
    auto d2 = d1;
    parallel_merge_sort(d1.data(), n, Executor{nullptr, 4});
    parallel_merge_sort_openmp(d2.data(), n, 4);
    EXPECT_EQ(d1, d2) << "n=" << n;
    EXPECT_TRUE(std::is_sorted(d2.begin(), d2.end()));
  }
}

TEST(ParallelMergeSortOpenMP, StableWithDuplicates) {
  Xoshiro256 rng(37);
  std::vector<KeyedRecord> data(6000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i].key = static_cast<std::int32_t>(rng.bounded(7));
    data[i].payload = static_cast<std::uint32_t>(i);
  }
  auto expected = data;
  std::stable_sort(expected.begin(), expected.end());
  parallel_merge_sort_openmp(data.data(), data.size(), 5);
  EXPECT_EQ(data, expected);
}
#endif

}  // namespace
}  // namespace mp
