// End-to-end tests of the mpsort CLI tool: sort/merge/check round-trips in
// text, numeric and binary modes, driven through the real binary.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

// Located relative to the test binary: build/tests/.. -> build/tools.
std::string tool_path() {
  return std::string(MPSORT_BINARY);
}

std::string temp_file(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  out << contents;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int run(const std::string& args) {
  const std::string cmd = tool_path() + " " + args + " 2>/dev/null";
  const int status = std::system(cmd.c_str());
  return WEXITSTATUS(status);
}

TEST(MpsortTool, SortsTextLexicographically) {
  const auto in = temp_file("in.txt");
  const auto out = temp_file("out.txt");
  write_file(in, "pear\napple\nbanana\n");
  ASSERT_EQ(run("sort " + in + " " + out), 0);
  EXPECT_EQ(read_file(out), "apple\nbanana\npear\n");
  EXPECT_EQ(run("check " + out), 0);
  EXPECT_EQ(run("check " + in), 1);
}

TEST(MpsortTool, NumericModeOrdersByValue) {
  const auto in = temp_file("nums.txt");
  const auto out = temp_file("nums_sorted.txt");
  write_file(in, "100\n9\n-3\n20\n");
  ASSERT_EQ(run("sort " + in + " " + out + " --numeric"), 0);
  EXPECT_EQ(read_file(out), "-3\n9\n20\n100\n");
  // Lexicographic check would call this unsorted; numeric check passes.
  EXPECT_EQ(run("check " + out + " --numeric"), 0);
}

TEST(MpsortTool, MergesPresortedInputsAndRejectsUnsorted) {
  const auto a = temp_file("a.txt");
  const auto b = temp_file("b.txt");
  const auto out = temp_file("m.txt");
  write_file(a, "ant\nfox\n");
  write_file(b, "bee\nzebra\n");
  ASSERT_EQ(run("merge " + out + " " + a + " " + b), 0);
  EXPECT_EQ(read_file(out), "ant\nbee\nfox\nzebra\n");

  const auto bad = temp_file("bad.txt");
  write_file(bad, "zebra\nant\n");
  EXPECT_EQ(run("merge " + out + " " + a + " " + bad), 1);
}

TEST(MpsortTool, BinaryRoundTrip) {
  const auto in = temp_file("in.bin");
  const auto out = temp_file("out.bin");
  const std::vector<std::int32_t> values{42, -7, 0, 1000000, -7};
  {
    std::ofstream f(in, std::ios::binary);
    f.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * 4));
  }
  ASSERT_EQ(run("sort " + in + " " + out + " --binary"), 0);
  std::ifstream f(out, std::ios::binary);
  std::vector<std::int32_t> sorted(values.size());
  f.read(reinterpret_cast<char*>(sorted.data()),
         static_cast<std::streamsize>(sorted.size() * 4));
  EXPECT_EQ(sorted, (std::vector<std::int32_t>{-7, -7, 0, 42, 1000000}));
  EXPECT_EQ(run("check " + out + " --binary"), 0);
}

TEST(MpsortTool, UsageErrors) {
  EXPECT_EQ(run("sort onlyonearg"), 2);
  EXPECT_EQ(run("unknown-command x y"), 2);
}

TEST(MpsortTool, RejectsNonNumericThreadCount) {
  const auto in = temp_file("threads_in.txt");
  const auto out = temp_file("threads_out.txt");
  write_file(in, "b\na\n");
  // These used to escape std::stoul and abort; now they are usage errors.
  EXPECT_EQ(run("sort " + in + " " + out + " --threads banana"), 2);
  EXPECT_EQ(run("sort " + in + " " + out + " --threads 12abc"), 2);
  EXPECT_EQ(run("sort " + in + " " + out + " --threads 99999999999999999999"),
            2);
  EXPECT_EQ(run("sort " + in + " " + out + " --threads"), 2);  // missing value
  EXPECT_EQ(run("sort " + in + " " + out + " --threads 2"), 0);
}

TEST(MpsortTool, RejectsMalformedFaultFlags) {
  const auto in = temp_file("fault_in.txt");
  const auto out = temp_file("fault_out.txt");
  write_file(in, "b\na\n");
  EXPECT_EQ(run("sort " + in + " " + out + " --fault-rate banana"), 2);
  EXPECT_EQ(run("sort " + in + " " + out + " --fault-rate 1.5"), 2);
  EXPECT_EQ(run("sort " + in + " " + out + " --fault-rate -0.1"), 2);
  EXPECT_EQ(run("sort " + in + " " + out + " --fault-rate"), 2);
  EXPECT_EQ(run("sort " + in + " " + out + " --fault-seed 12abc"), 2);
  EXPECT_EQ(run("sort " + in + " " + out + " --fault-seed"), 2);
  // Fault drills need the external-memory path: text mode is rejected.
  EXPECT_EQ(run("sort " + in + " " + out + " --fault-rate 0.1"), 2);
  // A zero rate is a no-op, not an error, in any mode.
  EXPECT_EQ(run("sort " + in + " " + out + " --fault-rate 0"), 0);
}

TEST(MpsortTool, FaultInjectedBinarySortStillSortsExactly) {
  const auto in = temp_file("fault_in.bin");
  const auto out = temp_file("fault_out.bin");
  const auto out2 = temp_file("fault_out2.bin");
  std::vector<std::int32_t> values;
  for (int i = 0; i < 5000; ++i) values.push_back((i * 2654435761) % 997);
  {
    std::ofstream f(in, std::ios::binary);
    f.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * 4));
  }
  ASSERT_EQ(
      run("sort " + in + " " + out + " --binary --fault-rate 0.1"
          " --fault-seed 7 --threads 2"),
      0);
  EXPECT_EQ(run("check " + out + " --binary"), 0);
  // Same seed => byte-identical output file.
  ASSERT_EQ(
      run("sort " + in + " " + out2 + " --binary --fault-rate 0.1"
          " --fault-seed 7 --threads 2"),
      0);
  EXPECT_EQ(read_file(out), read_file(out2));
  EXPECT_EQ(read_file(out).size(), values.size() * 4);
}

TEST(MpsortTool, MergeNumericOrdersByValue) {
  const auto a = temp_file("num_a.txt");
  const auto b = temp_file("num_b.txt");
  const auto out = temp_file("num_m.txt");
  write_file(a, "2\n10\n");
  write_file(b, "-1\n9\n");
  ASSERT_EQ(run("merge " + out + " " + a + " " + b + " --numeric"), 0);
  EXPECT_EQ(read_file(out), "-1\n2\n9\n10\n");
  // Without --numeric the same inputs fail the lexicographic pre-sort check
  // ("2" > "10"), which is exactly why the flag exists for merge.
  EXPECT_EQ(run("merge " + out + " " + a + " " + b), 1);
}

TEST(MpsortTool, TraceFlagWritesChromeTraceJson) {
  const auto in = temp_file("trace_in.txt");
  const auto out = temp_file("trace_out.txt");
  const auto trace = temp_file("trace.json");
  std::string lines;
  for (int i = 2000; i-- > 0;) lines += std::to_string(i) + "\n";
  write_file(in, lines);
  ASSERT_EQ(run("sort " + in + " " + out + " --numeric --threads 4 --trace " +
                trace),
            0);
  const std::string json = read_file(trace);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
}

TEST(MpsortTool, MetricsJsonReportsLanesAndImbalance) {
  const auto in = temp_file("metrics_in.txt");
  const auto out = temp_file("metrics_out.txt");
  const auto metrics = temp_file("metrics.json");
  std::string lines;
  for (int i = 5000; i-- > 0;) lines += std::to_string(i) + "\n";
  write_file(in, lines);
  ASSERT_EQ(run("sort " + in + " " + out +
                " --numeric --threads 4 --metrics --metrics-json " + metrics),
            0);
  const std::string json = read_file(metrics);
  EXPECT_NE(json.find("\"schema\":\"mergepath-lane-metrics-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"lanes\":["), std::string::npos);
  EXPECT_NE(json.find("\"compares\""), std::string::npos);
  EXPECT_NE(json.find("\"imbalance\""), std::string::npos);
}

}  // namespace
