// End-to-end tests of the mpsort CLI tool: sort/merge/check round-trips in
// text, numeric and binary modes, driven through the real binary.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

// Located relative to the test binary: build/tests/.. -> build/tools.
std::string tool_path() {
  return std::string(MPSORT_BINARY);
}

std::string temp_file(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  out << contents;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int run(const std::string& args) {
  const std::string cmd = tool_path() + " " + args + " 2>/dev/null";
  const int status = std::system(cmd.c_str());
  return WEXITSTATUS(status);
}

TEST(MpsortTool, SortsTextLexicographically) {
  const auto in = temp_file("in.txt");
  const auto out = temp_file("out.txt");
  write_file(in, "pear\napple\nbanana\n");
  ASSERT_EQ(run("sort " + in + " " + out), 0);
  EXPECT_EQ(read_file(out), "apple\nbanana\npear\n");
  EXPECT_EQ(run("check " + out), 0);
  EXPECT_EQ(run("check " + in), 1);
}

TEST(MpsortTool, NumericModeOrdersByValue) {
  const auto in = temp_file("nums.txt");
  const auto out = temp_file("nums_sorted.txt");
  write_file(in, "100\n9\n-3\n20\n");
  ASSERT_EQ(run("sort " + in + " " + out + " --numeric"), 0);
  EXPECT_EQ(read_file(out), "-3\n9\n20\n100\n");
  // Lexicographic check would call this unsorted; numeric check passes.
  EXPECT_EQ(run("check " + out + " --numeric"), 0);
}

TEST(MpsortTool, MergesPresortedInputsAndRejectsUnsorted) {
  const auto a = temp_file("a.txt");
  const auto b = temp_file("b.txt");
  const auto out = temp_file("m.txt");
  write_file(a, "ant\nfox\n");
  write_file(b, "bee\nzebra\n");
  ASSERT_EQ(run("merge " + out + " " + a + " " + b), 0);
  EXPECT_EQ(read_file(out), "ant\nbee\nfox\nzebra\n");

  const auto bad = temp_file("bad.txt");
  write_file(bad, "zebra\nant\n");
  EXPECT_EQ(run("merge " + out + " " + a + " " + bad), 1);
}

TEST(MpsortTool, BinaryRoundTrip) {
  const auto in = temp_file("in.bin");
  const auto out = temp_file("out.bin");
  const std::vector<std::int32_t> values{42, -7, 0, 1000000, -7};
  {
    std::ofstream f(in, std::ios::binary);
    f.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * 4));
  }
  ASSERT_EQ(run("sort " + in + " " + out + " --binary"), 0);
  std::ifstream f(out, std::ios::binary);
  std::vector<std::int32_t> sorted(values.size());
  f.read(reinterpret_cast<char*>(sorted.data()),
         static_cast<std::streamsize>(sorted.size() * 4));
  EXPECT_EQ(sorted, (std::vector<std::int32_t>{-7, -7, 0, 42, 1000000}));
  EXPECT_EQ(run("check " + out + " --binary"), 0);
}

TEST(MpsortTool, UsageErrors) {
  EXPECT_EQ(run("sort onlyonearg"), 2);
  EXPECT_EQ(run("unknown-command x y"), 2);
}

}  // namespace
