// Tests for core/multiway_merge.hpp: LoserTree pop order and stability,
// multiway_select against a brute-force stable reference, and the parallel
// k-way merge.

#include "core/multiway_merge.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "test_support.hpp"
#include "util/data_gen.hpp"
#include "util/rng.hpp"

namespace mp {
namespace {

std::vector<std::vector<std::int32_t>> make_runs(std::size_t k,
                                                 std::size_t max_len,
                                                 std::uint64_t seed,
                                                 std::uint64_t universe) {
  Xoshiro256 rng(seed);
  std::vector<std::vector<std::int32_t>> runs(k);
  for (auto& run : runs) {
    run.resize(rng.bounded(max_len + 1));
    for (auto& x : run) x = static_cast<std::int32_t>(rng.bounded(universe));
    std::sort(run.begin(), run.end());
  }
  return runs;
}

std::vector<std::int32_t> flatten_sorted(
    const std::vector<std::vector<std::int32_t>>& runs) {
  std::vector<std::int32_t> all;
  for (const auto& run : runs) all.insert(all.end(), run.begin(), run.end());
  std::stable_sort(all.begin(), all.end());
  return all;
}

TEST(LoserTree, PopsInSortedOrder) {
  const auto runs = make_runs(5, 200, 71, 1000);
  std::vector<LoserTree<std::int32_t>::Cursor> cursors;
  for (const auto& run : runs)
    cursors.push_back({run.data(), run.data() + run.size()});
  LoserTree<std::int32_t> tree(std::move(cursors));

  std::vector<std::int32_t> out;
  while (!tree.empty()) out.push_back(tree.pop());
  EXPECT_EQ(out, flatten_sorted(runs));
}

TEST(LoserTree, EdgeCases) {
  // No runs.
  using Cursors = std::vector<LoserTree<std::int32_t>::Cursor>;
  LoserTree<std::int32_t> empty_tree(Cursors{});
  EXPECT_TRUE(empty_tree.empty());

  // Single run.
  const std::vector<std::int32_t> run{1, 2, 3};
  LoserTree<std::int32_t> single(Cursors{{run.data(), run.data() + 3}});
  EXPECT_EQ(single.pop(), 1);
  EXPECT_EQ(single.pop(), 2);
  EXPECT_EQ(single.pop(), 3);
  EXPECT_TRUE(single.empty());

  // All runs empty.
  LoserTree<std::int32_t> all_empty(
      Cursors{{run.data(), run.data()}, {run.data(), run.data()}});
  EXPECT_TRUE(all_empty.empty());
}

TEST(LoserTree, StableTieBreaking) {
  // Identical values everywhere: pops must cycle run 0 fully, then 1, ...
  // No — stability means: among equal heads, the LOWEST run index pops
  // first, and after popping, run 0's next equal head is again lowest. So
  // run 0 drains completely before run 1 contributes, etc.
  const std::vector<std::int32_t> r0{5, 5}, r1{5, 5}, r2{5};
  using Cursors = std::vector<LoserTree<std::int32_t>::Cursor>;
  LoserTree<std::int32_t> tree(Cursors{{r0.data(), r0.data() + 2},
                                       {r1.data(), r1.data() + 2},
                                       {r2.data(), r2.data() + 1}});
  // Track which run each pop came from by address.
  std::vector<int> origin;
  while (!tree.empty()) {
    const std::int32_t* addr = &tree.pop();
    if (addr >= r0.data() && addr < r0.data() + 2) origin.push_back(0);
    else if (addr >= r1.data() && addr < r1.data() + 2) origin.push_back(1);
    else origin.push_back(2);
  }
  const std::vector<int> expected{0, 0, 1, 1, 2};
  EXPECT_EQ(origin, expected);
}

TEST(LoserTree, NonPowerOfTwoRunCounts) {
  for (std::size_t k : {2u, 3u, 5u, 6u, 7u, 9u, 17u}) {
    const auto runs = make_runs(k, 50, 73 + k, 100);
    std::vector<LoserTree<std::int32_t>::Cursor> cursors;
    for (const auto& run : runs)
      cursors.push_back({run.data(), run.data() + run.size()});
    LoserTree<std::int32_t> tree(std::move(cursors));
    std::vector<std::int32_t> out;
    while (!tree.empty()) out.push_back(tree.pop());
    EXPECT_EQ(out, flatten_sorted(runs)) << "k=" << k;
  }
}

// Brute-force stable selection reference: tag every element with
// (value, run, idx), sort, take prefix, count per run.
std::vector<std::size_t> reference_select(
    const std::vector<std::vector<std::int32_t>>& runs, std::size_t rank) {
  struct Tagged {
    std::int32_t value;
    std::size_t run, idx;
  };
  std::vector<Tagged> all;
  for (std::size_t t = 0; t < runs.size(); ++t)
    for (std::size_t i = 0; i < runs[t].size(); ++i)
      all.push_back({runs[t][i], t, i});
  std::sort(all.begin(), all.end(), [](const Tagged& x, const Tagged& y) {
    return std::tie(x.value, x.run, x.idx) < std::tie(y.value, y.run, y.idx);
  });
  std::vector<std::size_t> pos(runs.size(), 0);
  for (std::size_t s = 0; s < rank; ++s) ++pos[all[s].run];
  return pos;
}

TEST(MultiwaySelect, MatchesBruteForceWithHeavyTies) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const auto runs = make_runs(4, 30, 100 + seed, 5);  // universe of 5: ties
    std::vector<std::span<const std::int32_t>> views;
    for (const auto& run : runs) views.emplace_back(run.data(), run.size());
    std::size_t total = 0;
    for (const auto& run : runs) total += run.size();

    for (std::size_t rank = 0; rank <= total; ++rank) {
      const auto actual = multiway_select(
          std::span<const std::span<const std::int32_t>>(views), rank);
      const auto expected = reference_select(runs, rank);
      EXPECT_EQ(actual, expected) << "seed=" << seed << " rank=" << rank;
    }
  }
}

TEST(MultiwaySelect, TwoRunsAgreesWithDiagonalSearchSemantics) {
  // For k = 2 the selection must be the co-rank: prefixes tile the stable
  // merge. Verify via merged-output equivalence.
  const auto input = make_merge_input(Dist::kFewDuplicates, 500, 400, 79);
  std::vector<std::span<const std::int32_t>> views{
      {input.a.data(), input.a.size()}, {input.b.data(), input.b.size()}};
  const auto expected = test::reference_merge(input.a, input.b);
  for (std::size_t rank : {0u, 1u, 250u, 450u, 900u}) {
    const auto pos = multiway_select(
        std::span<const std::span<const std::int32_t>>(views), rank);
    EXPECT_EQ(pos[0] + pos[1], rank);
    // The claimed prefix must be exactly the first `rank` of the merge.
    std::vector<std::int32_t> claimed;
    claimed.insert(claimed.end(), input.a.begin(),
                   input.a.begin() + static_cast<std::ptrdiff_t>(pos[0]));
    claimed.insert(claimed.end(), input.b.begin(),
                   input.b.begin() + static_cast<std::ptrdiff_t>(pos[1]));
    std::sort(claimed.begin(), claimed.end());
    std::vector<std::int32_t> prefix(expected.begin(),
                                     expected.begin() +
                                         static_cast<std::ptrdiff_t>(rank));
    std::sort(prefix.begin(), prefix.end());
    EXPECT_EQ(claimed, prefix) << "rank " << rank;
  }
}

class MultiwayMergeParam
    : public ::testing::TestWithParam<std::tuple<std::size_t, unsigned>> {};

TEST_P(MultiwayMergeParam, MergesCorrectly) {
  const auto [k, threads] = GetParam();
  const auto runs = make_runs(k, 500, 200 + k + threads, 1u << 20);
  const auto result =
      parallel_multiway_merge(runs, Executor{nullptr, threads});
  EXPECT_EQ(result, flatten_sorted(runs));
}

INSTANTIATE_TEST_SUITE_P(
    RunsAndThreads, MultiwayMergeParam,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{3}, std::size_t{8},
                                         std::size_t{13}),
                       ::testing::Values(1u, 4u, 7u)),
    [](const auto& pinfo) {
      return "k" + std::to_string(std::get<0>(pinfo.param)) + "_p" +
             std::to_string(std::get<1>(pinfo.param));
    });

TEST(ParallelMultiwayMerge, HeavyDuplicationStableAcrossLanes) {
  const auto runs = make_runs(6, 400, 83, 4);  // tiny universe
  const auto result = parallel_multiway_merge(runs, Executor{nullptr, 5});
  EXPECT_EQ(result, flatten_sorted(runs));
}

TEST(ParallelMultiwayMerge, EmptyAndDegenerate) {
  EXPECT_TRUE(parallel_multiway_merge(
                  std::vector<std::vector<std::int32_t>>{})
                  .empty());
  const std::vector<std::vector<std::int32_t>> some{{}, {1, 2}, {}};
  const auto result = parallel_multiway_merge(some, Executor{nullptr, 4});
  const std::vector<std::int32_t> expected{1, 2};
  EXPECT_EQ(result, expected);
}

}  // namespace
}  // namespace mp
