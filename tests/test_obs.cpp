// Tests of the observability subsystem (src/obs/): the lock-free trace
// recorder (ring wraparound, snapshot ordering, Chrome-trace export), the
// FastClock calibration, online span percentiles, the flight recorder
// (including the fault-injected degrade path), the metrics registry, and
// the per-lane aggregation including the imbalance summary. The
// multi-threaded stress cases double as the TSan coverage for the
// recorder's quiescence contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/instrument.hpp"
#include "core/parallel_merge.hpp"
#include "core/recovery.hpp"
#include "fault/fault.hpp"
#include "obs/fastclock.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/percentiles.hpp"
#include "obs/trace.hpp"
#include "util/threading.hpp"

namespace {

using namespace mp;

// Every test arms/disarms its own window; the fixture guarantees a clean
// slate even if an assertion fails mid-test. The flight recorder is kept
// OFF by default so the exact-count trace assertions stay independent of
// it; flight tests enable it themselves.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::disarm_tracing();
    obs::reset_tracing();
    obs::disarm_span_stats();
    obs::reset_span_stats();
    obs::set_flight_enabled(false);
    obs::set_flight_capacity(obs::kDefaultFlightCapacity);
    obs::reset_flight();
    obs::LaneMetrics::instance().disarm();
    obs::LaneMetrics::instance().reset();
  }
  void TearDown() override {
    obs::disarm_tracing();
    obs::disarm_span_stats();
    obs::reset_span_stats();
    obs::set_flight_enabled(false);
    obs::set_flight_capacity(obs::kDefaultFlightCapacity);
    obs::reset_flight();
    obs::set_flight_dump_path("");
    obs::LaneMetrics::instance().disarm();
    obs::FastClock::set_mode(obs::ClockMode::kAuto);
  }
};

std::vector<obs::TraceEvent> events_named(
    const std::vector<obs::TraceEvent>& events, const std::string& name) {
  std::vector<obs::TraceEvent> out;
  for (const auto& e : events)
    if (e.name && name == e.name) out.push_back(e);
  return out;
}

TEST_F(ObsTest, SpanRecordsNameArgAndDuration) {
  obs::arm_tracing();
  {
    obs::Span span("test.span", "value", 7);
  }
  obs::disarm_tracing();
  const auto spans = events_named(obs::trace_snapshot(), "test.span");
  ASSERT_EQ(spans.size(), obs::kTraceCompiledIn ? 1u : 0u);
  if (!obs::kTraceCompiledIn) return;
  EXPECT_EQ(spans[0].kind, obs::EventKind::kSpan);
  EXPECT_STREQ(spans[0].arg_name, "value");
  EXPECT_EQ(spans[0].arg, 7u);
}

TEST_F(ObsTest, NothingRecordedWhileDisarmed) {
  {
    obs::Span span("test.unarmed");
    obs::Span::counter("test.counter", 1);
    obs::Span::instant("test.instant");
  }
  EXPECT_TRUE(obs::trace_snapshot().empty());
}

TEST_F(ObsTest, SpanOpenAcrossDisarmIsStillRecorded) {
  // The armed check happens at construction; a span alive at disarm time
  // completes into its (still registered) buffer.
  obs::arm_tracing();
  {
    obs::Span span("test.straddle");
    obs::disarm_tracing();
  }
  EXPECT_EQ(events_named(obs::trace_snapshot(), "test.straddle").size(),
            obs::kTraceCompiledIn ? 1u : 0u);
}

TEST_F(ObsTest, CounterAndInstantEvents) {
  obs::arm_tracing();
  obs::Span::counter("test.gauge", 41);
  obs::Span::counter("test.gauge", 42);
  obs::Span::instant("test.mark", "round", 3);
  obs::disarm_tracing();
  const auto events = obs::trace_snapshot();
  const auto counters = events_named(events, "test.gauge");
  ASSERT_EQ(counters.size(), obs::kTraceCompiledIn ? 2u : 0u);
  if (!obs::kTraceCompiledIn) return;
  EXPECT_EQ(counters[0].kind, obs::EventKind::kCounter);
  EXPECT_EQ(counters[0].arg, 41u);
  EXPECT_EQ(counters[1].arg, 42u);
  const auto instants = events_named(events, "test.mark");
  ASSERT_EQ(instants.size(), 1u);
  EXPECT_EQ(instants[0].kind, obs::EventKind::kInstant);
  EXPECT_EQ(instants[0].arg, 3u);
}

TEST_F(ObsTest, RingWrapsKeepingNewestAndCountsDropped) {
  if (!obs::kTraceCompiledIn) GTEST_SKIP() << "tracing compiled out";
  obs::arm_tracing(/*events_per_thread=*/8);
  for (std::uint64_t k = 0; k < 20; ++k) {
    obs::Span::instant("test.seq", "k", k);
  }
  obs::disarm_tracing();
  const auto events = events_named(obs::trace_snapshot(), "test.seq");
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(obs::trace_dropped(), 12u);
  // Oldest events were evicted: the survivors are exactly k = 12..19, in
  // order.
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(events[i].arg, 12 + i);
}

TEST_F(ObsTest, SnapshotIsSortedByTimestamp) {
  obs::arm_tracing();
  for (int k = 0; k < 100; ++k) obs::Span::instant("test.tick");
  obs::disarm_tracing();
  const auto events = obs::trace_snapshot();
  EXPECT_TRUE(std::is_sorted(
      events.begin(), events.end(),
      [](const auto& x, const auto& y) { return x.ts_ns < y.ts_ns; }));
}

TEST_F(ObsTest, RearmResetsPreviousWindow) {
  obs::arm_tracing();
  obs::Span::instant("test.old");
  obs::arm_tracing();  // re-arm: old window must be gone
  obs::Span::instant("test.new");
  obs::disarm_tracing();
  const auto events = obs::trace_snapshot();
  EXPECT_TRUE(events_named(events, "test.old").empty());
  EXPECT_EQ(events_named(events, "test.new").size(),
            obs::kTraceCompiledIn ? 1u : 0u);
}

TEST_F(ObsTest, ResetClearsEventsAndDropCounts) {
  obs::arm_tracing(4);
  for (int k = 0; k < 10; ++k) obs::Span::instant("test.tick");
  obs::disarm_tracing();
  obs::reset_tracing();
  EXPECT_TRUE(obs::trace_snapshot().empty());
  EXPECT_EQ(obs::trace_dropped(), 0u);
}

// Minimal structural JSON scan: verifies brace/bracket balance outside
// string literals and the presence of the required top-level keys. Full
// parse validation lives in scripts/check_trace.py (run in CI).
void expect_balanced_json(const std::string& text) {
  int depth_obj = 0, depth_arr = 0;
  bool in_string = false, escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped)
        escaped = false;
      else if (c == '\\')
        escaped = true;
      else if (c == '"')
        in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++depth_obj; break;
      case '}': --depth_obj; break;
      case '[': ++depth_arr; break;
      case ']': --depth_arr; break;
      default: break;
    }
    EXPECT_GE(depth_obj, 0);
    EXPECT_GE(depth_arr, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth_obj, 0);
  EXPECT_EQ(depth_arr, 0);
}

TEST_F(ObsTest, ChromeTraceExportIsStructurallyValidJson) {
  obs::arm_tracing();
  {
    obs::Span outer("test.outer", "n", 2);
    obs::Span inner("test.inner");
    obs::Span::counter("test.count", 5);
    obs::Span::instant("test.mark");
  }
  obs::disarm_tracing();
  std::ostringstream os;
  obs::write_chrome_trace(os);
  const std::string json = os.str();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\""), std::string::npos);
  if (obs::kTraceCompiledIn) {
    EXPECT_NE(json.find("\"test.outer\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  }
}

TEST_F(ObsTest, ThreadPoolJobEmitsLaneSpans) {
  if (!obs::kTraceCompiledIn) GTEST_SKIP() << "tracing compiled out";
  obs::arm_tracing();
  ThreadPool pool(3);
  pool.parallel_for_lanes(4, [](unsigned) {});
  obs::disarm_tracing();
  const auto events = obs::trace_snapshot();
  EXPECT_EQ(events_named(events, "pool.job").size(), 1u);
  const auto lanes = events_named(events, "pool.lane");
  ASSERT_EQ(lanes.size(), 4u);
  std::set<std::uint64_t> seen;
  for (const auto& e : lanes) seen.insert(e.arg);
  EXPECT_EQ(seen, (std::set<std::uint64_t>{0, 1, 2, 3}));
  EXPECT_EQ(events_named(events, "pool.barrier").size(), 1u);
}

TEST_F(ObsTest, ParallelMergeEmitsPartitionAndSegmentSpans) {
  if (!obs::kTraceCompiledIn) GTEST_SKIP() << "tracing compiled out";
  std::vector<int> a(4096), b(4096), out(8192);
  for (int i = 0; i < 4096; ++i) {
    a[static_cast<std::size_t>(i)] = 2 * i;
    b[static_cast<std::size_t>(i)] = 2 * i + 1;
  }
  obs::arm_tracing();
  ThreadPool pool(3);
  parallel_merge(a.data(), a.size(), b.data(), b.size(), out.data(),
                 Executor{&pool, 4});
  obs::disarm_tracing();
  const auto events = obs::trace_snapshot();
  EXPECT_EQ(events_named(events, "merge").size(), 1u);
  EXPECT_EQ(events_named(events, "merge.partition").size(), 4u);
  EXPECT_EQ(events_named(events, "merge.segment").size(), 4u);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

TEST_F(ObsTest, MultiThreadedRecordingStress) {
  // Many short spans from many threads into small rings: the TSan preset
  // runs this to prove the hot path and the arm/snapshot control plane
  // (under the quiescence contract) are race-free.
  obs::arm_tracing(/*events_per_thread=*/128);
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for_lanes(8, [](unsigned lane) {
      obs::Span span("stress.lane", "lane", lane);
      obs::Span::counter("stress.count", lane);
    });
  }
  obs::disarm_tracing();
  const auto events = obs::trace_snapshot();
  if (obs::kTraceCompiledIn) {
    EXPECT_FALSE(events.empty());
    EXPECT_GE(obs::trace_thread_count(), 1u);
  }
  std::ostringstream os;
  obs::write_chrome_trace(os);
  expect_balanced_json(os.str());
}

// ---------------------------------------------------------------------------
// FastClock (not MP_TRACE-gated: it is just a clock).

TEST_F(ObsTest, FastClockIsMonotonicAndCalibrated) {
  std::uint64_t prev = obs::FastClock::now_ns();
  EXPECT_GT(prev, 0u);
  for (int k = 0; k < 10000; ++k) {
    const std::uint64_t now = obs::FastClock::now_ns();
    ASSERT_GE(now, prev);
    prev = now;
  }
  const obs::ClockCalibration cal = obs::FastClock::calibration();
  if (cal.using_tsc) {
    EXPECT_GT(cal.ns_per_tick, 0.0);
    EXPECT_EQ(obs::FastClock::source_name(), "tsc");
  } else {
    EXPECT_EQ(obs::FastClock::source_name(), "steady");
  }
}

TEST_F(ObsTest, FastClockForcedSteadyFallsBack) {
  obs::FastClock::set_mode(obs::ClockMode::kSteady);
  EXPECT_EQ(obs::FastClock::mode(), obs::ClockMode::kSteady);
  EXPECT_FALSE(obs::FastClock::calibration().using_tsc);
  EXPECT_EQ(obs::FastClock::source_name(), "steady");
  const std::uint64_t t0 = obs::FastClock::now_ns();
  EXPECT_GE(obs::FastClock::now_ns(), t0);
  // Forcing TSC succeeds wherever the instruction exists (invariance is
  // only required for the kAuto default).
  obs::FastClock::set_mode(obs::ClockMode::kTsc);
  EXPECT_EQ(obs::FastClock::calibration().using_tsc, obs::detail::kHasTsc);
  obs::FastClock::set_mode(obs::ClockMode::kAuto);
}

TEST_F(ObsTest, FastClockTracksSteadyClockAcrossModes) {
  // Whatever the source, values live on the steady_clock timeline: a
  // forced-steady read taken between two default-mode reads must land
  // between them (with generous slack for scheduling).
  const std::uint64_t before = obs::FastClock::now_ns();
  obs::FastClock::set_mode(obs::ClockMode::kSteady);
  const std::uint64_t mid = obs::FastClock::now_ns();
  obs::FastClock::set_mode(obs::ClockMode::kAuto);
  const std::uint64_t after = obs::FastClock::now_ns();
  constexpr std::uint64_t kSlackNs = 50'000'000;  // 50 ms
  EXPECT_GE(mid + kSlackNs, before);
  EXPECT_GE(after + kSlackNs, mid);
}

TEST_F(ObsTest, FastClockRecalibrationDisabledOrBeforeIntervalIsInert) {
  obs::FastClock::recalibrate_every(0);
  EXPECT_EQ(obs::FastClock::recalibrate_interval(), 0u);
  EXPECT_FALSE(obs::FastClock::maybe_recalibrate());  // disabled
  // Armed with an enormous interval: the window cannot have elapsed.
  obs::FastClock::recalibrate_every(std::uint64_t{1} << 62);
  EXPECT_FALSE(obs::FastClock::maybe_recalibrate());
  obs::FastClock::recalibrate_every(0);
}

TEST_F(ObsTest, FastClockRecalibrationHealsInjectedDrift) {
  obs::FastClock::set_mode(obs::ClockMode::kTsc);
  if (!obs::FastClock::calibration().using_tsc) {
    obs::FastClock::set_mode(obs::ClockMode::kAuto);
    GTEST_SKIP() << "host has no TSC; drift model does not apply";
  }

  // Corrupt the published rate by 50%: conversion error now grows by
  // ~0.5 ms per elapsed ms — the linear-drift model of a mis-calibrated
  // long-running server (compressed from hours to milliseconds).
  obs::detail::inject_clock_drift(1.5);
  constexpr std::uint64_t kWindowNs = 2'000'000;  // 2 ms
  const std::uint64_t spin_until = obs::detail::steady_now_ns() + kWindowNs;
  while (obs::detail::steady_now_ns() < spin_until) {
  }
  const auto drift_of = [] {
    const std::uint64_t fast = obs::FastClock::now_ns();
    const std::uint64_t steady = obs::detail::steady_now_ns();
    return fast > steady ? fast - steady : steady - fast;
  };
  // ~2 ms at 1.5x rate puts the fast clock ~1 ms ahead of steady_clock.
  const std::uint64_t drifted = drift_of();
  EXPECT_GT(drifted, kWindowNs / 4);

  // One maintenance call (interval already elapsed) re-derives the rate
  // over the window and re-anchors the epoch at "now".
  obs::FastClock::recalibrate_every(kWindowNs / 2);
  const std::uint64_t recals_before = obs::FastClock::recalibrations();
  EXPECT_TRUE(obs::FastClock::maybe_recalibrate());
  EXPECT_EQ(obs::FastClock::recalibrations(), recals_before + 1);
  const std::uint64_t healed = drift_of();
  EXPECT_LT(healed, drifted / 4);
  EXPECT_LT(healed, 1'000'000u);  // back within 1 ms of steady_clock

  // Readers racing the re-publication stay on a sane timeline (coarse
  // monotonicity check across the swap).
  EXPECT_FALSE(obs::FastClock::maybe_recalibrate());  // window not elapsed

  obs::FastClock::recalibrate_every(0);
  obs::FastClock::set_mode(obs::ClockMode::kAuto);
}

// ---------------------------------------------------------------------------
// Online span-duration percentiles.

TEST_F(ObsTest, DurationBucketBoundsRoundTrip) {
  // Exact unit buckets below 8 ns.
  for (std::uint64_t ns = 0; ns < 8; ++ns) {
    EXPECT_EQ(obs::duration_bucket(ns), ns);
    const auto [lo, hi] = obs::duration_bucket_bounds(ns);
    EXPECT_EQ(lo, ns);
    EXPECT_EQ(hi, ns + 1);
  }
  // Every sampled value falls inside its bucket's bounds, and the mapping
  // is monotone.
  std::size_t prev_bucket = 0;
  for (std::uint64_t ns = 1; ns < (std::uint64_t{1} << 62);
       ns += 1 + ns / 3) {
    const std::size_t bucket = obs::duration_bucket(ns);
    ASSERT_LT(bucket, obs::kSpanHistBuckets);
    EXPECT_GE(bucket, prev_bucket);
    prev_bucket = bucket;
    const auto [lo, hi] = obs::duration_bucket_bounds(bucket);
    EXPECT_LE(lo, ns);
    EXPECT_GT(hi, ns);
    // Bounds round-trip: both edges map back to the same bucket.
    EXPECT_EQ(obs::duration_bucket(lo), bucket);
    EXPECT_EQ(obs::duration_bucket(hi - 1), bucket);
  }
}

TEST_F(ObsTest, PercentilesWithinDocumentedErrorBound) {
  if (!obs::kTraceCompiledIn) GTEST_SKIP() << "tracing compiled out";
  // Deterministic pseudo-random durations across several scales, checked
  // against exact order statistics. The histogram reports the bucket
  // midpoint, so the estimate must land within kSpanStatsRelativeError
  // of the exact quantile (plus 1 ns of integer slack).
  std::vector<std::uint64_t> samples;
  std::uint64_t x = 0x243f6a8885a308d3ull;
  for (int k = 0; k < 20000; ++k) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    samples.push_back(x % 2'000'000 + 1);  // 1 ns .. 2 ms
  }
  obs::arm_span_stats();
  for (const std::uint64_t ns : samples)
    obs::record_span_duration("test.quantile", ns);
  obs::disarm_span_stats();

  const auto stats = obs::span_stats_snapshot();
  ASSERT_EQ(stats.size(), 1u);
  const obs::SpanStat& stat = stats[0];
  EXPECT_EQ(stat.name, "test.quantile");
  EXPECT_EQ(stat.count, samples.size());
  std::sort(samples.begin(), samples.end());
  EXPECT_EQ(stat.max_ns, samples.back());
  const auto exact = [&](double q) {
    const auto rank = static_cast<std::size_t>(
        static_cast<double>(samples.size()) * q + 0.999999);
    return samples[std::max<std::size_t>(rank, 1) - 1];
  };
  const auto check = [&](std::uint64_t est, double q) {
    const double truth = static_cast<double>(exact(q));
    EXPECT_NEAR(static_cast<double>(est), truth,
                truth * obs::kSpanStatsRelativeError + 1.0)
        << "quantile " << q;
  };
  check(stat.p50_ns, 0.50);
  check(stat.p95_ns, 0.95);
  check(stat.p99_ns, 0.99);
  // Estimates never exceed the observed maximum (clamped).
  EXPECT_LE(stat.p99_ns, stat.max_ns);
}

TEST_F(ObsTest, SpanStatsFromRealPoolSpans) {
  if (!obs::kTraceCompiledIn) GTEST_SKIP() << "tracing compiled out";
  obs::arm_span_stats();
  ThreadPool pool(3);
  pool.parallel_for_lanes(4, [](unsigned) {});
  obs::disarm_span_stats();
  const auto stats = obs::span_stats_snapshot();
  bool found = false;
  for (const obs::SpanStat& stat : stats) {
    if (stat.name != "pool.lane") continue;
    found = true;
    EXPECT_EQ(stat.count, 4u);
    EXPECT_GE(stat.max_ns, stat.p99_ns);
    EXPECT_GE(stat.p99_ns, stat.p50_ns);
    EXPECT_GE(stat.sum_ns, stat.max_ns);
  }
  EXPECT_TRUE(found) << "no pool.lane percentile row";
}

TEST_F(ObsTest, SpanStatsMergeAcrossThreads) {
  if (!obs::kTraceCompiledIn) GTEST_SKIP() << "tracing compiled out";
  // The same name recorded from every lane merges into one row whose
  // count sums across per-thread histograms.
  obs::arm_span_stats();
  ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for_lanes(4, [](unsigned lane) {
      obs::record_span_duration("test.cross", 100 + lane);
    });
  }
  obs::disarm_span_stats();
  const auto stats = obs::span_stats_snapshot();
  // The pool's own spans are excluded: stats were armed, so pool.lane etc.
  // also recorded — find our row.
  bool found = false;
  for (const obs::SpanStat& stat : stats) {
    if (stat.name != "test.cross") continue;
    found = true;
    EXPECT_EQ(stat.count, 20u);
  }
  EXPECT_TRUE(found);
}

TEST_F(ObsTest, SpanStatsResetAndRearmStartClean) {
  if (!obs::kTraceCompiledIn) GTEST_SKIP() << "tracing compiled out";
  obs::arm_span_stats();
  obs::record_span_duration("test.old", 5);
  obs::disarm_span_stats();
  EXPECT_FALSE(obs::span_stats_armed());
  obs::reset_span_stats();
  EXPECT_TRUE(obs::span_stats_snapshot().empty());
  obs::arm_span_stats();
  EXPECT_TRUE(obs::span_stats_armed());
  obs::record_span_duration("test.new", 7);
  obs::disarm_span_stats();
  const auto stats = obs::span_stats_snapshot();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].name, "test.new");
}

TEST_F(ObsTest, MetricsJsonCarriesSpanStats) {
  if (obs::kTraceCompiledIn) {
    obs::arm_span_stats();
    obs::record_span_duration("test.json_stat", 1000);
    obs::disarm_span_stats();
  }
  std::ostringstream os;
  obs::write_metrics_json(os);
  const std::string json = os.str();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"span_stats\""), std::string::npos);
  EXPECT_NE(json.find("\"span_stats_dropped\""), std::string::npos);
  if (obs::kTraceCompiledIn) {
    EXPECT_NE(json.find("\"test.json_stat\""), std::string::npos);
    EXPECT_NE(json.find("\"p99_ns\""), std::string::npos);
  }
}

TEST_F(ObsTest, PrometheusExportSanitizesNamesAndEmitsQuantiles) {
  obs::MetricsRegistry::instance().reset();
  obs::MetricsRegistry::instance().counter("test.prom-ops").add(3);
  obs::MetricsRegistry::instance().gauge("test.prom.level").set(-2);
  if (obs::kTraceCompiledIn) {
    obs::arm_span_stats();
    for (int k = 1; k <= 100; ++k)
      obs::record_span_duration("test.prom.span", 100 * k);
    obs::disarm_span_stats();
  }
  std::ostringstream os;
  obs::export_prometheus(os);
  const std::string text = os.str();
  // Dots and dashes sanitize to underscores in metric names; span names
  // survive verbatim as label values.
  EXPECT_NE(text.find("mergepath_test_prom_ops_total 3"), std::string::npos);
  EXPECT_NE(text.find("mergepath_test_prom_level -2"), std::string::npos);
  if (obs::kTraceCompiledIn) {
    EXPECT_NE(text.find("mergepath_span_duration_ns{span=\"test.prom.span\","
                        "quantile=\"0.5\"}"),
              std::string::npos);
    EXPECT_NE(text.find("quantile=\"0.95\""), std::string::npos);
    EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
    EXPECT_NE(
        text.find("mergepath_span_duration_ns_count{span=\"test.prom.span\""),
        std::string::npos);
    EXPECT_NE(
        text.find("mergepath_span_duration_ns_max{span=\"test.prom.span\""),
        std::string::npos);
  }
  obs::MetricsRegistry::instance().reset();
}

// ---------------------------------------------------------------------------
// Flight recorder.

TEST_F(ObsTest, FlightRecordsWhileTraceDisarmed) {
  if (!obs::kTraceCompiledIn) GTEST_SKIP() << "tracing compiled out";
  obs::set_flight_enabled(true);
  EXPECT_TRUE(obs::flight_enabled());
  {
    obs::Span span("test.flight");
  }
  // The trace ring saw nothing (disarmed); the flight ring kept the span.
  EXPECT_TRUE(events_named(obs::trace_snapshot(), "test.flight").empty());
  EXPECT_EQ(events_named(obs::flight_snapshot(), "test.flight").size(), 1u);
}

TEST_F(ObsTest, FlightRingBoundedKeepsNewest) {
  if (!obs::kTraceCompiledIn) GTEST_SKIP() << "tracing compiled out";
  obs::set_flight_enabled(true);
  obs::set_flight_capacity(8);
  for (std::uint64_t k = 0; k < 20; ++k)
    obs::Span::instant("test.fseq", "k", k);
  obs::set_flight_enabled(false);
  const auto events = events_named(obs::flight_snapshot(), "test.fseq");
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(events[i].arg, 12 + i);
}

TEST_F(ObsTest, FlightSnapshotNormalizesTimestamps) {
  if (!obs::kTraceCompiledIn) GTEST_SKIP() << "tracing compiled out";
  obs::set_flight_enabled(true);
  obs::Span::instant("test.fnorm");
  obs::Span::instant("test.fnorm");
  obs::set_flight_enabled(false);
  const auto events = obs::flight_snapshot();
  ASSERT_GE(events.size(), 2u);
  // Absolute FastClock stamps are rebased to the earliest retained event.
  EXPECT_EQ(events.front().ts_ns, 0u);
  EXPECT_TRUE(std::is_sorted(
      events.begin(), events.end(),
      [](const auto& x, const auto& y) { return x.ts_ns < y.ts_ns; }));
}

TEST_F(ObsTest, WriteFlightTraceMarksRecorderAndReason) {
  obs::set_flight_enabled(true);
  {
    obs::Span span("test.fdump");
  }
  std::ostringstream os;
  obs::write_flight_trace(os);
  const std::string json = os.str();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"flight_recorder\":true"), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"\""), std::string::npos);

  obs::flight_report_degraded("test.reason");
  EXPECT_TRUE(obs::flight_degraded());
  std::ostringstream os2;
  obs::write_flight_trace(os2);
  EXPECT_NE(os2.str().find("\"reason\":\"test.reason\""), std::string::npos);
  if (obs::kTraceCompiledIn) {
    EXPECT_NE(os2.str().find("\"flight.degraded\""), std::string::npos);
  }
}

TEST_F(ObsTest, FlightWritePendingNeedsDegradeOrForce) {
  obs::set_flight_enabled(true);
  const std::string path =
      ::testing::TempDir() + "obs_flight_pending.json";
  obs::set_flight_dump_path(path);
  EXPECT_EQ(obs::flight_dump_path(), path);
  // Healthy run: nothing to write.
  EXPECT_FALSE(obs::flight_write_pending());
  // Forced (mpsort --flight-dump): writes once, then the latch holds.
  EXPECT_TRUE(obs::flight_write_pending(/*force=*/true));
  EXPECT_FALSE(obs::flight_write_pending(/*force=*/true));
}

TEST_F(ObsTest, FlightSnapshotOnDegrade) {
  if (!obs::kTraceCompiledIn) GTEST_SKIP() << "tracing compiled out";
  if (!fault::kFaultCompiledIn) GTEST_SKIP() << "fault injection compiled out";
  // Every lane op faults permanently: retries exhaust, the recovery engine
  // reports degraded and falls back to sequential execution — and the
  // always-armed flight recorder must then auto-write its snapshot from
  // the quiescent finalisation call, without force.
  obs::set_flight_enabled(true);
  const std::string path =
      ::testing::TempDir() + "obs_flight_degrade.json";
  obs::set_flight_dump_path(path);

  std::vector<int> data(4096);
  for (std::size_t k = 0; k < data.size(); ++k)
    data[k] = static_cast<int>(data.size() - k);
  {
    ThreadPool pool(3);
    fault::FaultConfig config;
    config.seed = 7;
    config.lane_delay_us = 50.0;
    fault::FaultPlan plan(config);
    plan.fail_from(0, fault::FaultKind::kLaneThrow);
    fault::ScopedInjector injector(pool, plan);
    const RecoveryReport report = resilient_parallel_merge_sort(
        data.data(), data.size(), Executor{&pool, 4});
    EXPECT_GT(report.fallback_lanes, 0u);
  }
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
  EXPECT_TRUE(obs::flight_degraded());
  EXPECT_STREQ(obs::flight_degraded_reason(), "pool.fallback");

  ASSERT_TRUE(obs::flight_write_pending());
  EXPECT_FALSE(obs::flight_write_pending());  // one dump per degrade
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"flight_recorder\":true"), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"pool.fallback\""), std::string::npos);
  EXPECT_NE(json.find("\"flight.degraded\""), std::string::npos);
  EXPECT_NE(json.find("\"pool.lane\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Metrics registry.

TEST(MetricsRegistry, CounterGaugeHistogramRoundTrip) {
  auto& registry = obs::MetricsRegistry::instance();
  registry.reset();
  auto& counter = registry.counter("test.ops");
  counter.add();
  counter.add(9);
  EXPECT_EQ(counter.value(), 10u);
  EXPECT_EQ(&registry.counter("test.ops"), &counter);  // stable reference

  auto& gauge = registry.gauge("test.level");
  gauge.set(-5);
  gauge.add(2);
  EXPECT_EQ(gauge.value(), -3);

  auto& histogram = registry.histogram("test.sizes");
  histogram.record(0);    // bucket 0
  histogram.record(1);    // bucket 1
  histogram.record(7);    // bucket 3: [4, 8)
  histogram.record(8);    // bucket 4: [8, 16)
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_EQ(histogram.sum(), 16u);
  EXPECT_EQ(histogram.bucket(0), 1u);
  EXPECT_EQ(histogram.bucket(1), 1u);
  EXPECT_EQ(histogram.bucket(3), 1u);
  EXPECT_EQ(histogram.bucket(4), 1u);

  std::ostringstream os;
  registry.write_json(os);
  const std::string json = os.str();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"test.ops\":10"), std::string::npos);
  EXPECT_NE(json.find("\"test.level\":-3"), std::string::npos);
  EXPECT_NE(json.find("\"test.sizes\""), std::string::npos);

  registry.reset();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(histogram.count(), 0u);
}

TEST(LaneMetrics, ImbalanceSummaryFromKnownTimes) {
  auto& metrics = obs::LaneMetrics::instance();
  metrics.reset();
  metrics.record_job(2);
  metrics.record_lane(0, 100);
  metrics.record_lane(1, 300);
  metrics.record_barrier_wait(40);
  metrics.record_checkout(7);
  const obs::LaneReport report = metrics.snapshot();
  ASSERT_EQ(report.lanes.size(), 2u);
  EXPECT_EQ(report.jobs, 1u);
  EXPECT_EQ(report.barrier_waits, 1u);
  EXPECT_EQ(report.barrier_ns, 40u);
  EXPECT_EQ(report.checkouts, 1u);
  EXPECT_EQ(report.checkout_ns, 7u);
  EXPECT_EQ(report.lane_ns_max, 300u);
  EXPECT_EQ(report.lane_ns_min, 100u);
  EXPECT_DOUBLE_EQ(report.lane_ns_mean, 200.0);
  EXPECT_DOUBLE_EQ(report.imbalance, 1.5);
  metrics.reset();
}

TEST(LaneMetrics, OpCountsAggregateAcrossLanesAndRuns) {
  auto& metrics = obs::LaneMetrics::instance();
  metrics.reset();
  OpCounts ops0;
  ops0.compare(10);
  ops0.move(20);
  ops0.search_step();
  OpCounts ops1;
  ops1.compare(5);
  ops1.stage(3);
  metrics.record_ops(0, ops0);
  metrics.record_ops(1, ops1);
  metrics.record_ops(0, ops0);  // second run accumulates
  const obs::LaneReport report = metrics.snapshot();
  ASSERT_EQ(report.lanes.size(), 2u);
  EXPECT_EQ(report.lanes[0].compares, 20u);
  EXPECT_EQ(report.lanes[0].moves, 40u);
  EXPECT_EQ(report.lanes[0].search_steps, 2u);
  EXPECT_EQ(report.lanes[1].compares, 5u);
  EXPECT_EQ(report.lanes[1].stages, 3u);
  metrics.reset();
}

TEST(LaneMetrics, LaneIndexAboveCapFoldsIntoLastSlot) {
  auto& metrics = obs::LaneMetrics::instance();
  metrics.reset();
  metrics.record_lane(obs::kMaxMetricLanes + 50, 10);
  const obs::LaneReport report = metrics.snapshot();
  ASSERT_EQ(report.lanes.size(), 1u);
  EXPECT_EQ(report.lanes[0].lane, obs::kMaxMetricLanes - 1);
  metrics.reset();
}

TEST(LaneMetrics, ArmedPoolRunRecordsLaneTimesAndBarrier) {
  auto& metrics = obs::LaneMetrics::instance();
  metrics.arm();
  ThreadPool pool(3);
  std::atomic<unsigned> ran{0};
  pool.parallel_for_lanes(4, [&](unsigned) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  metrics.disarm();
  EXPECT_EQ(ran.load(), 4u);
  const obs::LaneReport report = metrics.snapshot();
  EXPECT_EQ(report.jobs, 1u);
  EXPECT_EQ(report.barrier_waits, 1u);
  ASSERT_EQ(report.lanes.size(), 4u);
  for (const auto& row : report.lanes) EXPECT_EQ(row.runs, 1u);
  EXPECT_GE(report.imbalance, 1.0);

  std::ostringstream os;
  report.write_json(os);
  const std::string json = os.str();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"schema\":\"mergepath-lane-metrics-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"imbalance\""), std::string::npos);
  metrics.reset();
}

TEST(LaneMetrics, CombinedMetricsJsonHasBothSections) {
  std::ostringstream os;
  obs::write_metrics_json(os);
  const std::string json = os.str();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"lane_report\""), std::string::npos);
  EXPECT_NE(json.find("\"registry\""), std::string::npos);
}

}  // namespace
