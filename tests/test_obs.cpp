// Tests of the observability subsystem (src/obs/): the lock-free trace
// recorder (ring wraparound, snapshot ordering, Chrome-trace export), the
// metrics registry, and the per-lane aggregation including the imbalance
// summary. The multi-threaded stress cases double as the TSan coverage for
// the recorder's quiescence contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/instrument.hpp"
#include "core/parallel_merge.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/threading.hpp"

namespace {

using namespace mp;

// Every test arms/disarms its own window; the fixture guarantees a clean
// slate even if an assertion fails mid-test.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::disarm_tracing();
    obs::reset_tracing();
    obs::LaneMetrics::instance().disarm();
    obs::LaneMetrics::instance().reset();
  }
  void TearDown() override {
    obs::disarm_tracing();
    obs::LaneMetrics::instance().disarm();
  }
};

std::vector<obs::TraceEvent> events_named(
    const std::vector<obs::TraceEvent>& events, const std::string& name) {
  std::vector<obs::TraceEvent> out;
  for (const auto& e : events)
    if (e.name && name == e.name) out.push_back(e);
  return out;
}

TEST_F(ObsTest, SpanRecordsNameArgAndDuration) {
  obs::arm_tracing();
  {
    obs::Span span("test.span", "value", 7);
  }
  obs::disarm_tracing();
  const auto spans = events_named(obs::trace_snapshot(), "test.span");
  ASSERT_EQ(spans.size(), obs::kTraceCompiledIn ? 1u : 0u);
  if (!obs::kTraceCompiledIn) return;
  EXPECT_EQ(spans[0].kind, obs::EventKind::kSpan);
  EXPECT_STREQ(spans[0].arg_name, "value");
  EXPECT_EQ(spans[0].arg, 7u);
}

TEST_F(ObsTest, NothingRecordedWhileDisarmed) {
  {
    obs::Span span("test.unarmed");
    obs::Span::counter("test.counter", 1);
    obs::Span::instant("test.instant");
  }
  EXPECT_TRUE(obs::trace_snapshot().empty());
}

TEST_F(ObsTest, SpanOpenAcrossDisarmIsStillRecorded) {
  // The armed check happens at construction; a span alive at disarm time
  // completes into its (still registered) buffer.
  obs::arm_tracing();
  {
    obs::Span span("test.straddle");
    obs::disarm_tracing();
  }
  EXPECT_EQ(events_named(obs::trace_snapshot(), "test.straddle").size(),
            obs::kTraceCompiledIn ? 1u : 0u);
}

TEST_F(ObsTest, CounterAndInstantEvents) {
  obs::arm_tracing();
  obs::Span::counter("test.gauge", 41);
  obs::Span::counter("test.gauge", 42);
  obs::Span::instant("test.mark", "round", 3);
  obs::disarm_tracing();
  const auto events = obs::trace_snapshot();
  const auto counters = events_named(events, "test.gauge");
  ASSERT_EQ(counters.size(), obs::kTraceCompiledIn ? 2u : 0u);
  if (!obs::kTraceCompiledIn) return;
  EXPECT_EQ(counters[0].kind, obs::EventKind::kCounter);
  EXPECT_EQ(counters[0].arg, 41u);
  EXPECT_EQ(counters[1].arg, 42u);
  const auto instants = events_named(events, "test.mark");
  ASSERT_EQ(instants.size(), 1u);
  EXPECT_EQ(instants[0].kind, obs::EventKind::kInstant);
  EXPECT_EQ(instants[0].arg, 3u);
}

TEST_F(ObsTest, RingWrapsKeepingNewestAndCountsDropped) {
  if (!obs::kTraceCompiledIn) GTEST_SKIP() << "tracing compiled out";
  obs::arm_tracing(/*events_per_thread=*/8);
  for (std::uint64_t k = 0; k < 20; ++k) {
    obs::Span::instant("test.seq", "k", k);
  }
  obs::disarm_tracing();
  const auto events = events_named(obs::trace_snapshot(), "test.seq");
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(obs::trace_dropped(), 12u);
  // Oldest events were evicted: the survivors are exactly k = 12..19, in
  // order.
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(events[i].arg, 12 + i);
}

TEST_F(ObsTest, SnapshotIsSortedByTimestamp) {
  obs::arm_tracing();
  for (int k = 0; k < 100; ++k) obs::Span::instant("test.tick");
  obs::disarm_tracing();
  const auto events = obs::trace_snapshot();
  EXPECT_TRUE(std::is_sorted(
      events.begin(), events.end(),
      [](const auto& x, const auto& y) { return x.ts_ns < y.ts_ns; }));
}

TEST_F(ObsTest, RearmResetsPreviousWindow) {
  obs::arm_tracing();
  obs::Span::instant("test.old");
  obs::arm_tracing();  // re-arm: old window must be gone
  obs::Span::instant("test.new");
  obs::disarm_tracing();
  const auto events = obs::trace_snapshot();
  EXPECT_TRUE(events_named(events, "test.old").empty());
  EXPECT_EQ(events_named(events, "test.new").size(),
            obs::kTraceCompiledIn ? 1u : 0u);
}

TEST_F(ObsTest, ResetClearsEventsAndDropCounts) {
  obs::arm_tracing(4);
  for (int k = 0; k < 10; ++k) obs::Span::instant("test.tick");
  obs::disarm_tracing();
  obs::reset_tracing();
  EXPECT_TRUE(obs::trace_snapshot().empty());
  EXPECT_EQ(obs::trace_dropped(), 0u);
}

// Minimal structural JSON scan: verifies brace/bracket balance outside
// string literals and the presence of the required top-level keys. Full
// parse validation lives in scripts/check_trace.py (run in CI).
void expect_balanced_json(const std::string& text) {
  int depth_obj = 0, depth_arr = 0;
  bool in_string = false, escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped)
        escaped = false;
      else if (c == '\\')
        escaped = true;
      else if (c == '"')
        in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++depth_obj; break;
      case '}': --depth_obj; break;
      case '[': ++depth_arr; break;
      case ']': --depth_arr; break;
      default: break;
    }
    EXPECT_GE(depth_obj, 0);
    EXPECT_GE(depth_arr, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth_obj, 0);
  EXPECT_EQ(depth_arr, 0);
}

TEST_F(ObsTest, ChromeTraceExportIsStructurallyValidJson) {
  obs::arm_tracing();
  {
    obs::Span outer("test.outer", "n", 2);
    obs::Span inner("test.inner");
    obs::Span::counter("test.count", 5);
    obs::Span::instant("test.mark");
  }
  obs::disarm_tracing();
  std::ostringstream os;
  obs::write_chrome_trace(os);
  const std::string json = os.str();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\""), std::string::npos);
  if (obs::kTraceCompiledIn) {
    EXPECT_NE(json.find("\"test.outer\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  }
}

TEST_F(ObsTest, ThreadPoolJobEmitsLaneSpans) {
  if (!obs::kTraceCompiledIn) GTEST_SKIP() << "tracing compiled out";
  obs::arm_tracing();
  ThreadPool pool(3);
  pool.parallel_for_lanes(4, [](unsigned) {});
  obs::disarm_tracing();
  const auto events = obs::trace_snapshot();
  EXPECT_EQ(events_named(events, "pool.job").size(), 1u);
  const auto lanes = events_named(events, "pool.lane");
  ASSERT_EQ(lanes.size(), 4u);
  std::set<std::uint64_t> seen;
  for (const auto& e : lanes) seen.insert(e.arg);
  EXPECT_EQ(seen, (std::set<std::uint64_t>{0, 1, 2, 3}));
  EXPECT_EQ(events_named(events, "pool.barrier").size(), 1u);
}

TEST_F(ObsTest, ParallelMergeEmitsPartitionAndSegmentSpans) {
  if (!obs::kTraceCompiledIn) GTEST_SKIP() << "tracing compiled out";
  std::vector<int> a(4096), b(4096), out(8192);
  for (int i = 0; i < 4096; ++i) {
    a[static_cast<std::size_t>(i)] = 2 * i;
    b[static_cast<std::size_t>(i)] = 2 * i + 1;
  }
  obs::arm_tracing();
  ThreadPool pool(3);
  parallel_merge(a.data(), a.size(), b.data(), b.size(), out.data(),
                 Executor{&pool, 4});
  obs::disarm_tracing();
  const auto events = obs::trace_snapshot();
  EXPECT_EQ(events_named(events, "merge").size(), 1u);
  EXPECT_EQ(events_named(events, "merge.partition").size(), 4u);
  EXPECT_EQ(events_named(events, "merge.segment").size(), 4u);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

TEST_F(ObsTest, MultiThreadedRecordingStress) {
  // Many short spans from many threads into small rings: the TSan preset
  // runs this to prove the hot path and the arm/snapshot control plane
  // (under the quiescence contract) are race-free.
  obs::arm_tracing(/*events_per_thread=*/128);
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for_lanes(8, [](unsigned lane) {
      obs::Span span("stress.lane", "lane", lane);
      obs::Span::counter("stress.count", lane);
    });
  }
  obs::disarm_tracing();
  const auto events = obs::trace_snapshot();
  if (obs::kTraceCompiledIn) {
    EXPECT_FALSE(events.empty());
    EXPECT_GE(obs::trace_thread_count(), 1u);
  }
  std::ostringstream os;
  obs::write_chrome_trace(os);
  expect_balanced_json(os.str());
}

// ---------------------------------------------------------------------------
// Metrics registry.

TEST(MetricsRegistry, CounterGaugeHistogramRoundTrip) {
  auto& registry = obs::MetricsRegistry::instance();
  registry.reset();
  auto& counter = registry.counter("test.ops");
  counter.add();
  counter.add(9);
  EXPECT_EQ(counter.value(), 10u);
  EXPECT_EQ(&registry.counter("test.ops"), &counter);  // stable reference

  auto& gauge = registry.gauge("test.level");
  gauge.set(-5);
  gauge.add(2);
  EXPECT_EQ(gauge.value(), -3);

  auto& histogram = registry.histogram("test.sizes");
  histogram.record(0);    // bucket 0
  histogram.record(1);    // bucket 1
  histogram.record(7);    // bucket 3: [4, 8)
  histogram.record(8);    // bucket 4: [8, 16)
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_EQ(histogram.sum(), 16u);
  EXPECT_EQ(histogram.bucket(0), 1u);
  EXPECT_EQ(histogram.bucket(1), 1u);
  EXPECT_EQ(histogram.bucket(3), 1u);
  EXPECT_EQ(histogram.bucket(4), 1u);

  std::ostringstream os;
  registry.write_json(os);
  const std::string json = os.str();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"test.ops\":10"), std::string::npos);
  EXPECT_NE(json.find("\"test.level\":-3"), std::string::npos);
  EXPECT_NE(json.find("\"test.sizes\""), std::string::npos);

  registry.reset();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(histogram.count(), 0u);
}

TEST(LaneMetrics, ImbalanceSummaryFromKnownTimes) {
  auto& metrics = obs::LaneMetrics::instance();
  metrics.reset();
  metrics.record_job(2);
  metrics.record_lane(0, 100);
  metrics.record_lane(1, 300);
  metrics.record_barrier_wait(40);
  metrics.record_checkout(7);
  const obs::LaneReport report = metrics.snapshot();
  ASSERT_EQ(report.lanes.size(), 2u);
  EXPECT_EQ(report.jobs, 1u);
  EXPECT_EQ(report.barrier_waits, 1u);
  EXPECT_EQ(report.barrier_ns, 40u);
  EXPECT_EQ(report.checkouts, 1u);
  EXPECT_EQ(report.checkout_ns, 7u);
  EXPECT_EQ(report.lane_ns_max, 300u);
  EXPECT_EQ(report.lane_ns_min, 100u);
  EXPECT_DOUBLE_EQ(report.lane_ns_mean, 200.0);
  EXPECT_DOUBLE_EQ(report.imbalance, 1.5);
  metrics.reset();
}

TEST(LaneMetrics, OpCountsAggregateAcrossLanesAndRuns) {
  auto& metrics = obs::LaneMetrics::instance();
  metrics.reset();
  OpCounts ops0;
  ops0.compare(10);
  ops0.move(20);
  ops0.search_step();
  OpCounts ops1;
  ops1.compare(5);
  ops1.stage(3);
  metrics.record_ops(0, ops0);
  metrics.record_ops(1, ops1);
  metrics.record_ops(0, ops0);  // second run accumulates
  const obs::LaneReport report = metrics.snapshot();
  ASSERT_EQ(report.lanes.size(), 2u);
  EXPECT_EQ(report.lanes[0].compares, 20u);
  EXPECT_EQ(report.lanes[0].moves, 40u);
  EXPECT_EQ(report.lanes[0].search_steps, 2u);
  EXPECT_EQ(report.lanes[1].compares, 5u);
  EXPECT_EQ(report.lanes[1].stages, 3u);
  metrics.reset();
}

TEST(LaneMetrics, LaneIndexAboveCapFoldsIntoLastSlot) {
  auto& metrics = obs::LaneMetrics::instance();
  metrics.reset();
  metrics.record_lane(obs::kMaxMetricLanes + 50, 10);
  const obs::LaneReport report = metrics.snapshot();
  ASSERT_EQ(report.lanes.size(), 1u);
  EXPECT_EQ(report.lanes[0].lane, obs::kMaxMetricLanes - 1);
  metrics.reset();
}

TEST(LaneMetrics, ArmedPoolRunRecordsLaneTimesAndBarrier) {
  auto& metrics = obs::LaneMetrics::instance();
  metrics.arm();
  ThreadPool pool(3);
  std::atomic<unsigned> ran{0};
  pool.parallel_for_lanes(4, [&](unsigned) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  metrics.disarm();
  EXPECT_EQ(ran.load(), 4u);
  const obs::LaneReport report = metrics.snapshot();
  EXPECT_EQ(report.jobs, 1u);
  EXPECT_EQ(report.barrier_waits, 1u);
  ASSERT_EQ(report.lanes.size(), 4u);
  for (const auto& row : report.lanes) EXPECT_EQ(row.runs, 1u);
  EXPECT_GE(report.imbalance, 1.0);

  std::ostringstream os;
  report.write_json(os);
  const std::string json = os.str();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"schema\":\"mergepath-lane-metrics-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"imbalance\""), std::string::npos);
  metrics.reset();
}

TEST(LaneMetrics, CombinedMetricsJsonHasBothSections) {
  std::ostringstream os;
  obs::write_metrics_json(os);
  const std::string json = os.str();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"lane_report\""), std::string::npos);
  EXPECT_NE(json.find("\"registry\""), std::string::npos);
}

}  // namespace
