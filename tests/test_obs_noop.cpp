// Compile-time no-op guarantee for the tracing gate: this translation unit
// is built with MP_TRACE=0 (see tests/CMakeLists.txt) while the libraries
// it links against keep their default MP_TRACE=1. That is exactly the
// mixed-gate configuration the distinct RecordingSpan/NullSpan class names
// exist for: templates instantiated HERE carry no tracing call sites at
// all, while spans inside the prebuilt libraries still record.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string_view>
#include <type_traits>
#include <vector>

#include "core/parallel_merge.hpp"
#include "obs/fastclock.hpp"
#include "obs/flight.hpp"
#include "obs/percentiles.hpp"
#include "obs/trace.hpp"
#include "util/threading.hpp"

static_assert(!mp::obs::kTraceCompiledIn,
              "this TU must be compiled with MP_TRACE=0");
static_assert(std::is_empty_v<mp::obs::Span>,
              "the no-op span must carry zero bytes of state");
static_assert(sizeof(mp::obs::Span) == 1,
              "the no-op span must be an empty class");

namespace {

using namespace mp;

bool has_event(const std::vector<obs::TraceEvent>& events, const char* name) {
  for (const auto& e : events)
    if (e.name && std::string_view(name) == e.name) return true;
  return false;
}

TEST(ObsNoop, SpanCallSitesCompileToNothing) {
  obs::arm_tracing();
  {
    obs::Span span("noop.span", "k", 1);
    obs::Span::counter("noop.counter", 2);
    obs::Span::instant("noop.instant");
  }
  obs::disarm_tracing();
  const auto events = obs::trace_snapshot();
  EXPECT_FALSE(has_event(events, "noop.span"));
  EXPECT_FALSE(has_event(events, "noop.counter"));
  EXPECT_FALSE(has_event(events, "noop.instant"));
}

TEST(ObsNoop, TemplatesInstantiatedHereRecordNoMergeSpans) {
  // unsigned short keeps this instantiation unique to this TU, so the
  // linker cannot substitute a traced instantiation from another object.
  std::vector<unsigned short> a(2048), b(2048), out(4096);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<unsigned short>(2 * i);
    b[i] = static_cast<unsigned short>(2 * i + 1);
  }
  obs::arm_tracing();
  // Whether the *libraries* trace is invisible to this TU's MP_TRACE=0
  // macro; probe it at runtime — the real control plane reports armed,
  // the compiled-out stub never does.
  const bool lib_traces = obs::tracing_armed();
  ThreadPool pool(3);
  parallel_merge(a.data(), a.size(), b.data(), b.size(), out.data(),
                 Executor{&pool, 4});
  obs::disarm_tracing();
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));

  const auto events = obs::trace_snapshot();
  // The merge templates were instantiated in this MP_TRACE=0 TU: their
  // spans are gone regardless of the library gate.
  EXPECT_FALSE(has_event(events, "merge"));
  EXPECT_FALSE(has_event(events, "merge.partition"));
  EXPECT_FALSE(has_event(events, "merge.segment"));
  // When mp_util kept MP_TRACE=1 (the default build), the ThreadPool's
  // spans still record — mixed-gate behaviour working as designed. In a
  // -DMERGEPATH_TRACE=OFF build the whole binary records nothing.
  EXPECT_EQ(has_event(events, "pool.job"), lib_traces);
  EXPECT_EQ(has_event(events, "pool.lane"), lib_traces);
}

TEST(ObsNoop, NoopSpansReachNeitherStatsNorFlight) {
  // The state byte routes a RecordingSpan to every armed consumer — but
  // this TU's spans are NullSpan, so with percentiles armed and the flight
  // recorder on, nothing from here may appear in either.
  const bool flight_was = obs::flight_enabled();
  obs::set_flight_enabled(true);
  obs::reset_flight();
  obs::reset_span_stats();
  obs::arm_span_stats();
  {
    obs::Span span("noop.stat_span");
    obs::Span::instant("noop.flight_instant");
  }
  obs::disarm_span_stats();
  for (const obs::SpanStat& stat : obs::span_stats_snapshot())
    EXPECT_NE(stat.name, "noop.stat_span");
  EXPECT_FALSE(has_event(obs::flight_snapshot(), "noop.stat_span"));
  EXPECT_FALSE(has_event(obs::flight_snapshot(), "noop.flight_instant"));
  obs::reset_span_stats();
  obs::reset_flight();
  obs::set_flight_enabled(flight_was);
}

TEST(ObsNoop, PercentileAndFlightControlPlanesStayCallable) {
  // Arm/snapshot/reset and the exporters must work (possibly empty) so
  // tools keep their flags in an MP_TRACE=0 build.
  obs::reset_span_stats();
  obs::arm_span_stats();
  obs::disarm_span_stats();
  EXPECT_EQ(obs::span_stats_dropped(), 0u);
  std::ostringstream flight_os;
  obs::write_flight_trace(flight_os);
  EXPECT_NE(flight_os.str().find("\"flight_recorder\":true"),
            std::string::npos);
  EXPECT_FALSE(obs::flight_write_pending());  // no degrade, no dump path
}

TEST(ObsNoop, FastClockWorksWithoutTracing) {
  // The clock is not gated on MP_TRACE: timestamps and calibration
  // metadata must work even when every span is compiled out.
  const std::uint64_t t0 = obs::FastClock::now_ns();
  EXPECT_GT(t0, 0u);
  EXPECT_GE(obs::FastClock::now_ns(), t0);
  const std::string source = obs::FastClock::source_name();
  EXPECT_TRUE(source == "tsc" || source == "steady") << source;
}

TEST(ObsNoop, ControlPlaneDegradesGracefully) {
  // Even with call sites compiled out here, arm/disarm/export must be
  // callable so `mpsort --trace` in an MP_TRACE=0 build writes a valid
  // (possibly empty) trace instead of failing.
  obs::reset_tracing();
  obs::arm_tracing(16);
  // tracing_armed() means "spans will record": true only when the library
  // was built with MP_TRACE=1. The compiled-out stub stays false, which is
  // exactly how mpsort detects the gate to warn about an empty trace.
  const bool lib_traces = obs::tracing_armed();
  obs::disarm_tracing();
  EXPECT_FALSE(obs::tracing_armed());
  if (!lib_traces) {
    EXPECT_EQ(obs::trace_thread_count(), 0u);
  }
  std::ostringstream os;
  obs::write_chrome_trace(os);
  EXPECT_NE(os.str().find("\"traceEvents\""), std::string::npos);
}

}  // namespace
