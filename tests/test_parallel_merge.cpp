// Tests for core/parallel_merge.hpp (Algorithm 1): correctness against the
// stable reference across distributions, shapes and thread counts;
// stability; instrumentation invariants (perfect balance, O(N + p log N)
// work); exception safety; and the OpenMP backend when available.

#include "core/parallel_merge.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <tuple>

#include "test_support.hpp"
#include "util/data_gen.hpp"

namespace mp {
namespace {

class ParallelMergeCorrectness
    : public ::testing::TestWithParam<std::tuple<Dist, unsigned>> {};

TEST_P(ParallelMergeCorrectness, MatchesReference) {
  const auto [dist, threads] = GetParam();
  Executor exec{nullptr, threads};
  constexpr std::pair<std::size_t, std::size_t> kShapes[] = {
      {1000, 1000}, {1000, 37}, {37, 1000}, {1, 999}, {0, 512}, {512, 0}};
  for (const auto& [m, n] : kShapes) {
    const auto input = make_merge_input(dist, m, n, 97 + m + n);
    std::vector<std::int32_t> out(m + n);
    parallel_merge(input.a.data(), m, input.b.data(), n, out.data(), exec);
    EXPECT_EQ(out, test::reference_merge(input.a, input.b))
        << to_string(dist) << " m=" << m << " n=" << n << " p=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DistsAndThreads, ParallelMergeCorrectness,
    ::testing::Combine(::testing::ValuesIn(kAllDists),
                       ::testing::Values(1u, 2u, 3u, 4u, 7u, 12u, 32u)),
    [](const auto& pinfo) {
      return to_string(std::get<0>(pinfo.param)) + "_p" +
             std::to_string(std::get<1>(pinfo.param));
    });

TEST(ParallelMerge, VectorFrontEnd) {
  const auto input = make_merge_input(Dist::kUniform, 5000, 4000, 5);
  EXPECT_EQ(parallel_merge(input.a, input.b),
            test::reference_merge(input.a, input.b));
}

TEST(ParallelMerge, StableAcrossLaneBoundaries) {
  // Heavy duplication: lane boundaries land inside runs of equal keys, the
  // case that breaks naive tie handling.
  const auto input = make_keyed_input(3000, 3000, 7, 13);
  for (unsigned p : {2u, 5u, 12u}) {
    std::vector<KeyedRecord> out(6000);
    parallel_merge(input.a.data(), input.a.size(), input.b.data(),
                   input.b.size(), out.data(), Executor{nullptr, p});
    for (std::size_t i = 1; i < out.size(); ++i) {
      ASSERT_LE(out[i - 1].key, out[i].key);
      if (out[i - 1].key == out[i].key) {
        ASSERT_LT(out[i - 1].payload, out[i].payload)
            << "p=" << p << " at " << i;
      }
    }
  }
}

TEST(ParallelMerge, MoreThreadsThanElements) {
  const auto input = make_merge_input(Dist::kUniform, 3, 2, 17);
  std::vector<std::int32_t> out(5);
  parallel_merge(input.a.data(), 3, input.b.data(), 2, out.data(),
                 Executor{nullptr, 64});
  EXPECT_EQ(out, test::reference_merge(input.a, input.b));
}

TEST(ParallelMerge, DedicatedPool) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.workers(), 3u);
  const auto input = make_merge_input(Dist::kClustered, 10000, 8000, 19);
  std::vector<std::int32_t> out(18000);
  parallel_merge(input.a.data(), 10000, input.b.data(), 8000, out.data(),
                 Executor{&pool, 4});
  EXPECT_EQ(out, test::reference_merge(input.a, input.b));
}

TEST(ParallelMerge, SerialPoolIsDeterministicallyCorrect) {
  // workers = 0: lanes run inline in lane order (the PRAM-simulation mode).
  ThreadPool serial(0);
  EXPECT_EQ(serial.workers(), 0u);
  const auto input = make_merge_input(Dist::kInterleaved, 1000, 1000, 23);
  std::vector<std::int32_t> out(2000);
  parallel_merge(input.a.data(), 1000, input.b.data(), 1000, out.data(),
                 Executor{&serial, 8});
  EXPECT_EQ(out, test::reference_merge(input.a, input.b));
}

TEST(ParallelMerge, ComparatorExceptionPropagates) {
  const auto input = make_merge_input(Dist::kUniform, 4096, 4096, 29);
  std::vector<std::int32_t> out(8192);
  auto throwing = [](std::int32_t x, std::int32_t y) {
    if (x % 1000 == 17 || y % 1000 == 17) throw std::runtime_error("boom");
    return x < y;
  };
  bool threw = false;
  try {
    parallel_merge(input.a.data(), 4096, input.b.data(), 4096, out.data(),
                   Executor{nullptr, 4}, throwing);
  } catch (const std::runtime_error&) {
    threw = true;
  }
  // Uniform values over the full int32 range essentially surely contain a
  // residue-17 element; more importantly the pool must stay usable.
  if (threw) {
    std::vector<std::int32_t> ok(8192);
    parallel_merge(input.a.data(), 4096, input.b.data(), 4096, ok.data(),
                   Executor{nullptr, 4});
    EXPECT_EQ(ok, test::reference_merge(input.a, input.b));
  }
}

TEST(MergeSliceForLane, SlicesTileTheOutputExactly) {
  const auto input = make_merge_input(Dist::kClustered, 777, 555, 31);
  for (unsigned lanes : {1u, 2u, 5u, 16u}) {
    std::size_t expect_out = 0, sum_a = 0, sum_b = 0;
    for (unsigned lane = 0; lane < lanes; ++lane) {
      const MergeSlice s = merge_slice_for_lane(
          input.a.data(), 777, input.b.data(), 555, lane, lanes);
      EXPECT_EQ(s.out_begin, expect_out);
      EXPECT_EQ(s.a_begin + s.b_begin, s.out_begin);
      expect_out += s.steps;
      if (lane + 1 == lanes) {
        sum_a = 777 - s.a_begin;
        sum_b = 555 - s.b_begin;
      }
    }
    EXPECT_EQ(expect_out, 777u + 555u);
    EXPECT_LE(sum_a, 777u);
    EXPECT_LE(sum_b, 555u);
  }
}

TEST(ParallelMerge, WorkComplexityBound) {
  // Work must be <= N + p * (log2(min(m,n)) + 1) countable merge ops plus
  // N moves (Section III: O(N + p log N)).
  const std::size_t n = 1 << 15;
  const auto input = make_merge_input(Dist::kUniform, n, n, 37);
  for (unsigned p : {1u, 4u, 16u}) {
    ThreadPool serial(0);
    std::vector<OpCounts> counts(p);
    std::vector<std::int32_t> out(2 * n);
    parallel_merge(input.a.data(), n, input.b.data(), n, out.data(),
                   Executor{&serial, p}, std::less<>{},
                   std::span<OpCounts>(counts));
    std::uint64_t compares = 0, moves = 0, searches = 0;
    std::uint64_t max_lane_steps = 0;
    for (const auto& c : counts) {
      compares += c.compares;
      moves += c.moves;
      searches += c.search_steps;
      max_lane_steps = std::max(max_lane_steps, c.moves);
    }
    EXPECT_EQ(moves, 2 * n);
    EXPECT_LE(compares, 2 * n);
    EXPECT_LE(searches, static_cast<std::uint64_t>(p) * 17);
    // Corollary 7: perfect balance — every lane outputs N/p (+-1).
    EXPECT_LE(max_lane_steps, (2 * n) / p + 1);
  }
}

#ifdef _OPENMP
TEST(ParallelMergeOpenMP, MatchesReference) {
  for (Dist dist : kAllDists) {
    const auto input = make_merge_input(dist, 2000, 1500, 43);
    std::vector<std::int32_t> out(3500);
    parallel_merge_openmp(input.a.data(), 2000, input.b.data(), 1500,
                          out.data(), 4);
    EXPECT_EQ(out, test::reference_merge(input.a, input.b)) << to_string(dist);
  }
}
#endif

}  // namespace
}  // namespace mp
