// Tests for the crash-consistent external-sort pipeline (S26): manifest
// round-trip and torn-write rejection, double-slot fallback, async
// double-buffered I/O equivalence, clean end-to-end sorting across
// geometries, scripted crash/resume, the rate-driven crash loop (cumulative
// counters prove completed work is never redone), and the MP_FAULT=0
// contract (crash hooks compile to no-ops).

#include "pipeline/pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "extmem/run_file.hpp"
#include "util/rng.hpp"

namespace mp::pipeline {
namespace {

extmem::DeviceConfig tiny_blocks() {
  extmem::DeviceConfig config;
  config.block_bytes = 256;  // 64 int32 / 32 KeyId per block
  return config;
}

template <typename T>
extmem::RunHandle write_input(extmem::BlockDevice& device,
                              const std::vector<T>& values) {
  extmem::RunWriter<T> writer(device);
  writer.append(values.data(), values.size());
  return writer.finish();
}

template <typename T>
std::vector<T> read_run(extmem::BlockDevice& device, extmem::RunHandle run) {
  extmem::RunReader<T> reader(device, run);
  std::vector<T> out;
  out.reserve(static_cast<std::size_t>(run.element_count));
  while (!reader.empty()) out.push_back(reader.next());
  return out;
}

std::vector<std::int32_t> make_values(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::int32_t> v(n);
  for (auto& x : v)
    x = static_cast<std::int32_t>(rng() % 1000);  // plenty of ties
  return v;
}

Manifest sample_manifest() {
  Manifest m;
  m.seq = 7;
  m.phase = Phase::kMerge;
  m.elem_bytes = 4;
  m.total_elements = 1234;
  m.input = {3, 1234};
  m.output = {90, 1234};
  m.watermark = 55;
  m.ranks_done = 1;
  m.exchange_cursors = {10, 20, 30};
  m.runs_formed = 6;
  m.segments_merged = 4;
  m.ranks_exchanged = 1;
  m.checkpoints = 11;
  m.resumes = 2;
  m.shards.resize(3);
  m.shards[0].input_first = 0;
  m.shards[0].input_count = 411;
  m.shards[0].formed = 411;
  m.shards[0].runs = {{3, 100}, {8, 311}};
  m.shards[0].sorted = {40, 411};
  m.shards[0].segments_done = 2;
  m.shards[0].segment_count = 4;
  m.shards[0].cursors = {60, 70};
  return m;
}

TEST(Manifest, SerializeDeserializeRoundTrip) {
  const Manifest m = sample_manifest();
  const std::vector<std::uint8_t> image = serialize_manifest(m);
  const Manifest back = deserialize_manifest(image.data(), image.size());
  EXPECT_EQ(back, m);
}

TEST(Manifest, RejectsEveryCorruptByte) {
  const Manifest m = sample_manifest();
  const std::vector<std::uint8_t> image = serialize_manifest(m);
  // Flipping ANY single byte must be detected (magic, field, or checksum).
  for (std::size_t at = 0; at < image.size(); ++at) {
    std::vector<std::uint8_t> bad = image;
    bad[at] ^= 0x5a;
    EXPECT_THROW(deserialize_manifest(bad.data(), bad.size()), ManifestError)
        << "byte " << at;
  }
}

TEST(Manifest, RejectsTruncation) {
  const std::vector<std::uint8_t> image =
      serialize_manifest(sample_manifest());
  for (std::size_t len : {std::size_t{0}, std::size_t{4}, image.size() / 2,
                          image.size() - 1}) {
    EXPECT_THROW(deserialize_manifest(image.data(), len), ManifestError);
  }
}

TEST(ManifestStore, AlternatesSlotsAndLoadsNewest) {
  extmem::BlockDevice device(tiny_blocks());
  ManifestStore store = ManifestStore::create(device, 4096);
  EXPECT_EQ(store.slot_blocks(), 16u);
  Manifest m = sample_manifest();
  m.seq = 0;
  store.write(m);  // seq 1 -> slot 1
  EXPECT_EQ(m.seq, 1u);
  EXPECT_EQ(store.load().seq, 1u);
  m.checkpoints = 99;
  store.write(m);  // seq 2 -> slot 0
  const Manifest latest = store.load();
  EXPECT_EQ(latest.seq, 2u);
  EXPECT_EQ(latest.checkpoints, 99u);
}

TEST(ManifestStore, TornNewestSlotFallsBackToPreviousCheckpoint) {
  extmem::BlockDevice device(tiny_blocks());
  ManifestStore store = ManifestStore::create(device, 4096);
  Manifest m = sample_manifest();
  m.seq = 0;
  m.checkpoints = 1;
  store.write(m);  // seq 1 -> slot 1
  m.checkpoints = 2;
  store.write(m);  // seq 2 -> slot 0 (the newest)
  store.corrupt_slot(0);  // the torn write
  const Manifest survivor = store.load();
  EXPECT_EQ(survivor.seq, 1u);
  EXPECT_EQ(survivor.checkpoints, 1u);
}

TEST(ManifestStore, BothSlotsCorruptIsTypedError) {
  extmem::BlockDevice device(tiny_blocks());
  ManifestStore store = ManifestStore::create(device, 4096);
  Manifest m = sample_manifest();
  store.write(m);
  store.write(m);
  store.corrupt_slot(0);
  store.corrupt_slot(1);
  EXPECT_THROW(store.load(), ManifestError);
}

TEST(ManifestStore, UnwrittenRegionIsTypedError) {
  extmem::BlockDevice device(tiny_blocks());
  ManifestStore store = ManifestStore::create(device, 4096);
  EXPECT_THROW(store.load(), ManifestError);
}

TEST(AsyncIo, WriterReaderRoundTripAsyncAndInline) {
  for (const bool async : {false, true}) {
    extmem::BlockDevice device(tiny_blocks());
    IoThread io(async);
    const auto values = make_values(1000, 41);
    AsyncRunWriter<std::int32_t> writer(io, device);
    writer.append(values.data(), values.size());
    const extmem::RunHandle run = writer.finish();
    EXPECT_EQ(run.element_count, values.size());
    EXPECT_EQ(read_run<std::int32_t>(device, run), values) << async;

    // Windowed read, starting mid-block.
    AsyncRunReader<std::int32_t> reader(io, device, run, 37, 500);
    std::vector<std::int32_t> window;
    while (!reader.empty()) window.push_back(reader.next());
    EXPECT_EQ(window, std::vector<std::int32_t>(values.begin() + 37,
                                                values.begin() + 537));
    EXPECT_EQ(reader.consumed(), 500u);
  }
}

TEST(AsyncIo, PreallocatedSlotWriterLandsAtFixedBlocks) {
  extmem::BlockDevice device(tiny_blocks());
  IoThread io(true);
  const std::uint64_t first = device.allocate(4);
  const auto values = make_values(200, 5);  // 4 blocks at 64/elem block
  AsyncRunWriter<std::int32_t> writer(io, device, first);
  writer.append(values.data(), values.size());
  const extmem::RunHandle run = writer.finish();
  EXPECT_EQ(run.first_block, first);
  EXPECT_EQ(read_run<std::int32_t>(device, run), values);
}

TEST(AsyncIo, SurvivesTransientFaultsViaRetry) {
  extmem::BlockDevice device(tiny_blocks());
  fault::FaultConfig fc;
  fc.seed = 99;
  fc.rate = 0.2;  // transient/short/latency storms on every transfer
  fault::FaultPlan plan(fc);
  fault::ScopedInjector injector(device, plan);
  IoThread io(true);
  fault::RetryPolicy retry;
  retry.max_attempts = 64;
  const auto values = make_values(600, 7);
  AsyncRunWriter<std::int32_t> writer(io, device, retry);
  writer.append(values.data(), values.size());
  const extmem::RunHandle run = writer.finish();
  AsyncRunReader<std::int32_t> reader(io, device, run, 0,
                                      run.element_count, retry);
  std::vector<std::int32_t> back;
  while (!reader.empty()) back.push_back(reader.next());
  EXPECT_EQ(back, values);
  if constexpr (fault::kFaultCompiledIn) {
    EXPECT_GT(plan.stats().injected, 0u);
  }
}

/// Stability probe: sort by key only, ids record input order.
struct KeyId {
  std::int32_t key;
  std::int32_t id;
  friend bool operator==(const KeyId&, const KeyId&) = default;
};
struct KeyLess {
  bool operator()(const KeyId& a, const KeyId& b) const {
    return a.key < b.key;
  }
};

PipelineConfig small_config() {
  PipelineConfig cfg;
  cfg.memory_elems = 300;
  cfg.shards = 3;
  cfg.segment_blocks = 2;
  return cfg;
}

TEST(Pipeline, SortsAndIsStableEndToEnd) {
  extmem::BlockDevice device(tiny_blocks());
  Xoshiro256 rng(1);
  std::vector<KeyId> values(2500);
  for (std::size_t i = 0; i < values.size(); ++i)
    values[i] = {static_cast<std::int32_t>(rng() % 50),
                 static_cast<std::int32_t>(i)};
  const extmem::RunHandle input = write_input(device, values);
  auto pipe =
      Pipeline<KeyId, KeyLess>::start(device, input, small_config());
  const PipelineReport report = pipe.run();
  std::vector<KeyId> expected = values;
  std::stable_sort(expected.begin(), expected.end(), KeyLess{});
  EXPECT_EQ(read_run<KeyId>(device, report.output), expected);
  // The input run is never modified.
  EXPECT_EQ(read_run<KeyId>(device, input), values);
  EXPECT_GT(report.runs_formed, 3u);
  EXPECT_GT(report.checkpoints, 0u);
  EXPECT_EQ(report.resumes, 0u);
}

TEST(Pipeline, GeometryMatrixMatchesStdSort) {
  struct Shape {
    std::size_t n;
    PipelineConfig cfg;
  };
  std::vector<Shape> shapes;
  for (const unsigned shards : {1u, 2u, 5u}) {
    for (const std::size_t n : {std::size_t{1}, std::size_t{63},
                                std::size_t{64}, std::size_t{1017}}) {
      PipelineConfig cfg;
      cfg.shards = shards;
      cfg.memory_elems = 100;
      cfg.segment_blocks = 1;
      shapes.push_back({n, cfg});
    }
  }
  {  // serial-I/O baseline and checkpoint-free mode
    PipelineConfig cfg = small_config();
    cfg.double_buffer = false;
    shapes.push_back({800, cfg});
    cfg = small_config();
    cfg.checkpoints = false;
    shapes.push_back({800, cfg});
  }
  int case_index = 0;
  for (const Shape& shape : shapes) {
    extmem::BlockDevice device(tiny_blocks());
    const auto values = make_values(shape.n, 1000 + shape.n);
    const extmem::RunHandle input = write_input(device, values);
    auto pipe = Pipeline<std::int32_t>::start(device, input, shape.cfg);
    const PipelineReport report = pipe.run();
    std::vector<std::int32_t> expected = values;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(read_run<std::int32_t>(device, report.output), expected)
        << "case " << case_index << " n=" << shape.n
        << " shards=" << shape.cfg.shards;
    ++case_index;
  }
}

/// Expected steady-state block footprint after a completed pipeline:
/// the input run, the output run, and the two manifest slots. Everything
/// else (formed runs, shard runs, orphans) must have been released.
std::uint64_t expected_live_blocks(const extmem::BlockDevice& device,
                                   std::uint64_t n, std::uint32_t elem_bytes,
                                   const PipelineConfig& cfg) {
  const std::uint64_t epb = device.config().block_bytes / elem_bytes;
  const std::uint64_t run_blocks = (n + epb - 1) / epb;
  const std::uint64_t slot_blocks = ManifestStore::slot_blocks_for(
      device, worst_case_manifest_bytes(cfg.shards, n, cfg.memory_elems));
  return 2 * run_blocks + 2 * slot_blocks;
}

TEST(Pipeline, ScriptedCrashThenResumeIsByteExactAndLeakFree) {
  if constexpr (!fault::kFaultCompiledIn) GTEST_SKIP();
  const std::size_t n = 1200;
  const auto values = make_values(n, 77);
  std::vector<std::int32_t> expected = values;
  std::sort(expected.begin(), expected.end());
  // Kill at a few hand-picked steps: the very first boundary, a
  // pre-checkpoint (non-durable) one, and some mid-pipeline ones.
  for (const std::uint64_t kill : {0u, 1u, 4u, 9u, 16u, 25u}) {
    extmem::BlockDevice device(tiny_blocks());
    const extmem::RunHandle input = write_input(device, values);
    fault::FaultPlan plan;  // inert except the script
    plan.fail_op(kill, fault::FaultKind::kCrash);
    PipelineConfig cfg = small_config();
    cfg.crash_plan = &plan;
    auto pipe = Pipeline<std::int32_t>::start(device, input, cfg);
    const std::uint64_t base = pipe.manifest_block();
    bool crashed = false;
    PipelineReport report;
    for (int incarnation = 0;; ++incarnation) {
      ASSERT_LT(incarnation, 5);
      try {
        report = pipe.run();
        break;
      } catch (const CrashError& e) {
        crashed = true;
        EXPECT_EQ(e.step(), kill);
        pipe = Pipeline<std::int32_t>::resume(device, base, n, cfg);
      }
    }
    EXPECT_TRUE(crashed) << "kill=" << kill;
    EXPECT_EQ(read_run<std::int32_t>(device, report.output), expected)
        << "kill=" << kill;
    EXPECT_EQ(report.resumes, 1u);
    EXPECT_EQ(device.live_blocks(), expected_live_blocks(device, n, 4, cfg))
        << "kill=" << kill;
  }
}

TEST(Pipeline, RateOneCrashLoopNeverRedoesCompletedWork) {
  const std::size_t n = 1000;
  const auto values = make_values(n, 3);
  std::vector<std::int32_t> expected = values;
  std::sort(expected.begin(), expected.end());

  // Clean reference run: counters and output.
  PipelineConfig cfg = small_config();
  extmem::BlockDevice clean_device(tiny_blocks());
  const extmem::RunHandle clean_input = write_input(clean_device, values);
  auto clean = Pipeline<std::int32_t>::start(clean_device, clean_input, cfg);
  const PipelineReport clean_report = clean.run();
  ASSERT_EQ(read_run<std::int32_t>(clean_device, clean_report.output),
            expected);

  // Crash at EVERY durable point: each incarnation completes exactly one
  // new unit, then dies.
  extmem::BlockDevice device(tiny_blocks());
  const extmem::RunHandle input = write_input(device, values);
  fault::FaultConfig fc;
  fc.seed = 11;
  fc.rate = 1.0;
  fault::FaultPlan plan(fc);
  cfg.crash_plan = &plan;
  auto pipe = Pipeline<std::int32_t>::start(device, input, cfg);
  const std::uint64_t base = pipe.manifest_block();
  unsigned incarnations = 1;
  PipelineReport report;
  for (;;) {
    try {
      report = pipe.run();
      break;
    } catch (const CrashError&) {
      ++incarnations;
      ASSERT_LT(incarnations, 10000u);
      pipe = Pipeline<std::int32_t>::resume(device, base, n, cfg);
    }
  }
  EXPECT_EQ(read_run<std::int32_t>(device, report.output), expected);
  if constexpr (fault::kFaultCompiledIn) {
    EXPECT_GT(incarnations, 1u);
    // The no-redo proof: cumulative work counters of the crash-riddled
    // run equal the clean run's exactly — durable-point crashes never
    // re-execute a completed unit (no re-done form/merge/exchange I/O)
    // and never write an extra checkpoint.
    EXPECT_EQ(report.runs_formed, clean_report.runs_formed);
    EXPECT_EQ(report.segments_merged, clean_report.segments_merged);
    EXPECT_EQ(report.ranks_exchanged, clean_report.ranks_exchanged);
    EXPECT_EQ(report.checkpoints, clean_report.checkpoints);
    EXPECT_EQ(report.resumes, incarnations - 1);
  } else {
    // MP_FAULT=0: the crash hooks compile to no-ops — a rate-1.0 plan
    // must not fire once and the run completes in one incarnation.
    EXPECT_EQ(incarnations, 1u);
    EXPECT_EQ(report.resumes, 0u);
  }
  EXPECT_EQ(device.live_blocks(), expected_live_blocks(device, n, 4, cfg));
}

TEST(Pipeline, ResumeWithBothSlotsCorruptIsTypedManifestError) {
  if constexpr (!fault::kFaultCompiledIn) GTEST_SKIP();
  const std::size_t n = 600;
  const auto values = make_values(n, 21);
  extmem::BlockDevice device(tiny_blocks());
  const extmem::RunHandle input = write_input(device, values);
  fault::FaultPlan plan;
  plan.fail_op(6, fault::FaultKind::kCrash);
  PipelineConfig cfg = small_config();
  cfg.crash_plan = &plan;
  auto pipe = Pipeline<std::int32_t>::start(device, input, cfg);
  const std::uint64_t base = pipe.manifest_block();
  EXPECT_THROW(pipe.run(), CrashError);
  ManifestStore store = ManifestStore::attach(
      device, base,
      worst_case_manifest_bytes(cfg.shards, n, cfg.memory_elems));
  store.corrupt_slot(0);
  store.corrupt_slot(1);
  EXPECT_THROW(Pipeline<std::int32_t>::resume(device, base, n, cfg),
               ManifestError);
  // Full restart is the documented recovery: a fresh start() still works
  // on the same device and produces correct bytes.
  cfg.crash_plan = nullptr;
  auto fresh = Pipeline<std::int32_t>::start(device, input, cfg);
  std::vector<std::int32_t> expected = values;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(read_run<std::int32_t>(device, fresh.run().output), expected);
}

TEST(Pipeline, ResumeAfterCompletionReturnsSameOutput) {
  const std::size_t n = 500;
  const auto values = make_values(n, 8);
  extmem::BlockDevice device(tiny_blocks());
  const extmem::RunHandle input = write_input(device, values);
  PipelineConfig cfg = small_config();
  auto pipe = Pipeline<std::int32_t>::start(device, input, cfg);
  const PipelineReport first = pipe.run();
  auto again =
      Pipeline<std::int32_t>::resume(device, pipe.manifest_block(), n, cfg);
  const PipelineReport second = again.run();
  EXPECT_EQ(second.output, first.output);
  EXPECT_EQ(second.steps, 0u);  // nothing left to do
  EXPECT_EQ(read_run<std::int32_t>(device, second.output),
            read_run<std::int32_t>(device, first.output));
}

TEST(Pipeline, SurvivesDiskNetworkAndLaneFaultsTogether) {
  // The end-to-end robustness claim: disk faults (device plan), network
  // faults (exchange plan), lane faults (pool plan via ScopedInjector in
  // the form phase's recovery engine), AND rate-driven crashes, all armed
  // at once — output still byte-exact.
  const std::size_t n = 900;
  const auto values = make_values(n, 55);
  std::vector<std::int32_t> expected = values;
  std::sort(expected.begin(), expected.end());
  extmem::BlockDevice device(tiny_blocks());
  const extmem::RunHandle input = write_input(device, values);

  fault::FaultConfig disk_fc{/*seed=*/5, /*rate=*/0.05};
  fault::FaultPlan disk_plan(disk_fc);
  fault::ScopedInjector disk_injector(device, disk_plan);

  fault::FaultConfig net_fc{/*seed=*/6, /*rate=*/0.05};
  fault::FaultPlan net_plan(net_fc);

  fault::FaultConfig crash_fc{/*seed=*/7, /*rate=*/0.15};
  fault::FaultPlan crash_plan(crash_fc);

  PipelineConfig cfg = small_config();
  cfg.retry.max_attempts = 64;
  cfg.retry.jitter = 0.5;
  cfg.net.faults = &net_plan;
  cfg.net.max_resend = 64;
  cfg.net.segment_retries = 8;
  cfg.crash_plan = &crash_plan;
  auto pipe = Pipeline<std::int32_t>::start(device, input, cfg);
  const std::uint64_t base = pipe.manifest_block();
  PipelineReport report;
  unsigned incarnations = 1;
  for (;;) {
    try {
      report = pipe.run();
      break;
    } catch (const CrashError&) {
      ++incarnations;
      ASSERT_LT(incarnations, 10000u);
      pipe = Pipeline<std::int32_t>::resume(device, base, n, cfg);
    }
  }
  EXPECT_EQ(read_run<std::int32_t>(device, report.output), expected);
  EXPECT_EQ(device.live_blocks(), expected_live_blocks(device, n, 4, cfg));
  if constexpr (fault::kFaultCompiledIn) {
    EXPECT_GT(disk_plan.stats().injected, 0u);
  }
}

}  // namespace
}  // namespace mp::pipeline
