// Tests for pram/baselines_sim.hpp: the modelled baseline runs respect
// the relationships Section V claims — and the Hypercore preset behaves
// like the machine the paper describes.

#include "pram/baselines_sim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "pram/speedup.hpp"
#include "util/data_gen.hpp"
#include "util/rng.hpp"

namespace mp::pram {
namespace {

MergeInput narrow_b_input(std::size_t n, std::uint64_t seed) {
  MergeInput input = make_merge_input(Dist::kUniform, n, n, seed);
  const std::int32_t lo = std::numeric_limits<std::int32_t>::max() / 16 * 6;
  const std::int32_t hi = std::numeric_limits<std::int32_t>::max() / 16 * 7;
  Xoshiro256 rng(seed + 1);
  for (auto& x : input.b)
    x = lo + static_cast<std::int32_t>(
                 rng.bounded(static_cast<std::uint64_t>(hi - lo)));
  std::sort(input.b.begin(), input.b.end());
  return input;
}

TEST(BaselineSim, DeoSarkarMatchesMergePathUpToConstants) {
  const auto model = MachineModel::paper_x5670();
  const auto input = make_merge_input(Dist::kUniform, 1 << 17, 1 << 17, 5);
  for (unsigned p : {4u, 12u}) {
    const auto mp_run = simulate_parallel_merge(input.a, input.b, p, model);
    const auto ds_run = simulate_deo_sarkar(input.a, input.b, p, model);
    EXPECT_NEAR(ds_run.time_ns / mp_run.time_ns, 1.0, 0.05) << "p=" << p;
    EXPECT_EQ(ds_run.phases, 1u);
  }
}

TEST(BaselineSim, ShiloachVishkinPaysForImbalanceOnSkew) {
  const auto model = MachineModel::paper_x5670();
  const auto skew = narrow_b_input(1 << 17, 7);
  const auto uniform = make_merge_input(Dist::kUniform, 1 << 17, 1 << 17, 7);
  const unsigned p = 12;

  const double uniform_ratio =
      simulate_shiloach_vishkin(uniform.a, uniform.b, p, model).time_ns /
      simulate_parallel_merge(uniform.a, uniform.b, p, model).time_ns;
  const double skew_ratio =
      simulate_shiloach_vishkin(skew.a, skew.b, p, model).time_ns /
      simulate_parallel_merge(skew.a, skew.b, p, model).time_ns;
  // Uniform: near parity. Skewed: a clear latency penalty, within the 2x
  // worst case Section V quotes.
  EXPECT_LT(uniform_ratio, 1.1);
  EXPECT_GT(skew_ratio, 1.2);
  EXPECT_LE(skew_ratio, 2.1);
}

TEST(BaselineSim, AklSantoroPaysDependentRounds) {
  const auto model = MachineModel::paper_x5670();
  const auto input = make_merge_input(Dist::kUniform, 1 << 16, 1 << 16, 9);
  const unsigned p = 8;
  const auto as_run = simulate_akl_santoro(input.a, input.b, p, model);
  const auto mp_run = simulate_parallel_merge(input.a, input.b, p, model);
  // log2(8) partition rounds + 1 merge phase.
  EXPECT_EQ(as_run.phases, 4u);
  EXPECT_EQ(mp_run.phases, 1u);
  // More barrier time, similar compute (p is a power of two: balanced).
  EXPECT_GT(as_run.barrier_ns, mp_run.barrier_ns);
  EXPECT_NEAR(as_run.compute_ns / mp_run.compute_ns, 1.0, 0.15);
}

TEST(BaselineSim, BitonicWorkBlowupShowsInModeledTime) {
  const auto model = MachineModel::paper_x5670();
  const auto input = make_merge_input(Dist::kUniform, 1 << 15, 1 << 15, 11);
  const unsigned p = 8;
  const auto bitonic = simulate_bitonic_merge(input.a, input.b, p, model);
  const auto mp_run = simulate_parallel_merge(input.a, input.b, p, model);
  // ~log2(64Ki) = 16 passes: expect several-fold slower.
  EXPECT_GT(bitonic.time_ns, 5 * mp_run.time_ns);
  EXPECT_GE(bitonic.phases, 16u);
  // Work blow-up ~ (log N)/2 halved-constant vs the merge's ~2 ops per
  // element: 6x is the conservative side of the asymptotic gap at 64Ki.
  EXPECT_GT(bitonic.work_ops, 6 * mp_run.work_ops);
}

TEST(HypercoreModel, ScalesFurtherThanTheXeonModel) {
  const auto hyper = hypercore_model();
  const auto xeon = MachineModel::paper_x5670();
  // A bandwidth-exposed size (32 MiB per array): the Xeon model's memory
  // system saturates near 11 lanes while the Hypercore fabric keeps
  // feeding lanes into the 40s.
  const std::vector<unsigned> threads{48};
  const auto hyper_curve = merge_speedup_curve(1 << 22, threads, hyper, 13);
  const auto xeon_curve = merge_speedup_curve(1 << 22, threads, xeon, 13);
  EXPECT_GT(hyper_curve.points[0].speedup, 35.0);
  EXPECT_LT(xeon_curve.points[0].speedup, 25.0);
}

TEST(HypercoreModel, BarriersAreCheap) {
  const auto hyper = hypercore_model();
  EXPECT_LT(hyper.barrier_ns(64), MachineModel::paper_x5670().barrier_ns(12));
}

}  // namespace
}  // namespace mp::pram
