// Tests for the CREW PRAM cost-model simulator (S9): machine-model
// arithmetic, complexity-shape validation (E3's backing logic), and the
// speedup curves that reproduce Figure 5's qualitative structure.

#include "pram/simulate.hpp"

#include <gtest/gtest.h>

#include "core/merge_sort.hpp"
#include "pram/machine.hpp"
#include "pram/speedup.hpp"
#include "util/data_gen.hpp"

namespace mp::pram {
namespace {

TEST(MachineModel, LaneCostArithmetic) {
  MachineModel m;
  m.ns_per_compare = 2.0;
  m.ns_per_move = 1.0;
  m.ns_per_search_step = 10.0;
  m.ns_per_stage = 0.5;
  OpCounts ops;
  ops.compare(10);
  ops.move(20);
  ops.search_step(3);
  ops.stage(4);
  EXPECT_DOUBLE_EQ(m.lane_ns(ops), 10 * 2.0 + 20 * 1.0 + 3 * 10.0 + 4 * 0.5);
}

TEST(MachineModel, PhaseCostIsMaxLanePlusBarrier) {
  MachineModel m;
  m.ns_per_move = 1.0;
  m.barrier_base_ns = 100.0;
  m.barrier_per_lane_ns = 10.0;
  OpCounts fast, slow;
  fast.move(10);
  slow.move(50);
  const OpCounts lanes[] = {fast, slow};
  EXPECT_DOUBLE_EQ(phase_ns(m, lanes, 2), 50.0 + 100.0 + 20.0);
}

TEST(MachineModel, MemoryBandwidthSaturates) {
  MachineModel m;
  m.bytes_per_ns_per_lane = 2.0;
  m.bw_saturation_lanes = 4;
  EXPECT_DOUBLE_EQ(m.memory_ns(800, 1), 400.0);
  EXPECT_DOUBLE_EQ(m.memory_ns(800, 2), 200.0);
  EXPECT_DOUBLE_EQ(m.memory_ns(800, 4), 100.0);
  EXPECT_DOUBLE_EQ(m.memory_ns(800, 12), 100.0);  // saturated
}

TEST(Simulate, SequentialMergeWorkIsLinear) {
  const auto model = MachineModel::paper_x5670();
  const auto small = make_merge_input(Dist::kUniform, 10000, 10000, 7);
  const auto large = make_merge_input(Dist::kUniform, 40000, 40000, 7);
  const auto r1 = simulate_sequential_merge(small.a, small.b, model);
  const auto r4 = simulate_sequential_merge(large.a, large.b, model);
  EXPECT_EQ(r1.totals.moves, 20000u);
  EXPECT_EQ(r4.totals.moves, 80000u);
  // Work within [N, 2N] countable ops: compares <= moves.
  EXPECT_NEAR(static_cast<double>(r4.work_ops) /
                  static_cast<double>(r1.work_ops),
              4.0, 0.1);
}

TEST(Simulate, ParallelMergeWorkOverheadIsPLogN) {
  const auto model = MachineModel::paper_x5670();
  const auto input = make_merge_input(Dist::kUniform, 1 << 18, 1 << 18, 11);
  const auto serial = simulate_parallel_merge(input.a, input.b, 1, model);
  for (unsigned p : {2u, 8u, 32u}) {
    const auto par = simulate_parallel_merge(input.a, input.b, p, model);
    const std::uint64_t overhead = par.work_ops - serial.work_ops;
    // Excess work <= p * (log2(min) + 1) search steps plus p extra
    // boundary compares.
    EXPECT_LE(overhead, static_cast<std::uint64_t>(p) * 25) << "p=" << p;
    EXPECT_EQ(par.phases, 1u);
  }
}

TEST(Simulate, ParallelMergeCriticalPathShrinksLinearly) {
  const auto model = MachineModel::paper_x5670();
  const auto input = make_merge_input(Dist::kUniform, 1 << 18, 1 << 18, 13);
  const auto p1 = simulate_parallel_merge(input.a, input.b, 1, model);
  const auto p4 = simulate_parallel_merge(input.a, input.b, 4, model);
  const auto p8 = simulate_parallel_merge(input.a, input.b, 8, model);
  EXPECT_NEAR(static_cast<double>(p1.critical_ops) /
                  static_cast<double>(p4.critical_ops),
              4.0, 0.1);
  EXPECT_NEAR(static_cast<double>(p1.critical_ops) /
                  static_cast<double>(p8.critical_ops),
              8.0, 0.1);
}

TEST(Simulate, MergeSpeedupIsNearLinearInCache) {
  // 64k elements/array = 512 KiB total: fits the modelled LLC, so the
  // curve is compute-bound and should be near-linear like Figure 5's 1M.
  const auto model = MachineModel::paper_x5670();
  const std::vector<unsigned> threads{1, 2, 4, 8, 12};
  const auto curve = merge_speedup_curve(1 << 16, threads, model, 42);
  ASSERT_EQ(curve.points.size(), threads.size());
  EXPECT_NEAR(curve.points[1].speedup, 2.0, 0.2);
  EXPECT_NEAR(curve.points[2].speedup, 4.0, 0.4);
  EXPECT_GT(curve.points[4].speedup, 10.0);
  EXPECT_LE(curve.points[4].speedup, 12.1);
}

TEST(Simulate, LargeArraysLoseALittleSpeedupToBandwidth) {
  // Figure 5's "slight reduction in performance for the bigger input
  // arrays": beyond-LLC traffic is bandwidth-bound and saturates before
  // 12 lanes.
  const auto model = MachineModel::paper_x5670();
  const std::vector<unsigned> threads{12};
  // 1M per array (8 MiB total) fits the modelled LLC; 16M (128 MiB) is
  // firmly bandwidth-exposed — the two ends of Figure 5's size axis.
  const auto small = merge_speedup_curve(1 << 20, threads, model, 42);
  const auto large = merge_speedup_curve(1 << 24, threads, model, 42);
  EXPECT_LT(large.points[0].speedup, small.points[0].speedup);
  EXPECT_GT(large.points[0].speedup, 9.0);  // still near-linear
}

TEST(Simulate, SegmentedMergeMatchesParallelWorkApproximately) {
  const auto model = MachineModel::paper_x5670();
  const auto input = make_merge_input(Dist::kUniform, 1 << 15, 1 << 15, 17);
  SegmentedConfig config;
  config.segment_length = 2048;
  const auto seg = simulate_segmented_merge(input.a, input.b, 4, model,
                                            config);
  const auto par = simulate_parallel_merge(input.a, input.b, 4, model);
  // SPM does strictly more work (staging + write-back) ...
  EXPECT_GT(seg.work_ops, par.work_ops);
  // ... but bounded: roughly 2 extra touches per element.
  EXPECT_LT(seg.work_ops, 3 * par.work_ops);
  // And far more barriers: three per segment.
  EXPECT_GE(seg.phases, 3 * ((1u << 16) / 2048) - 1);
}

TEST(Simulate, MergeSortOutputsSortedAndScales) {
  const auto model = MachineModel::paper_x5670();
  const auto values = make_unsorted_values(1 << 15, 19);
  const auto s1 = simulate_merge_sort(values, 1, model);
  const auto s8 = simulate_merge_sort(values, 8, model);
  EXPECT_GT(s1.time_ns, s8.time_ns);
  const double speedup = s1.time_ns / s8.time_ns;
  EXPECT_GT(speedup, 4.0);
  EXPECT_LE(speedup, 8.5);
}

TEST(Simulate, SortSpeedupCurveIsMonotone) {
  const auto model = MachineModel::paper_x5670();
  const std::vector<unsigned> threads{1, 2, 4, 8};
  const auto curve = sort_speedup_curve(1 << 15, threads, model, 23);
  for (std::size_t i = 1; i < curve.points.size(); ++i)
    EXPECT_GT(curve.points[i].speedup, curve.points[i - 1].speedup);
}

TEST(Simulate, CacheSortAccountsMoreBarriersThanPlainSort) {
  const auto model = MachineModel::paper_x5670();
  const auto values = make_unsorted_values(1 << 15, 29);
  const auto plain = simulate_merge_sort(values, 4, model);
  const auto cache = simulate_cache_sort(values, 4, model, 16 * 1024);
  EXPECT_GT(cache.phases, plain.phases);
  EXPECT_GT(cache.barrier_ns, plain.barrier_ns);
}

TEST(Simulate, MergeSortDriverMatchesRealAlgorithmExactly) {
  // The simulator re-drives parallel_merge_sort's phases from the exposed
  // building blocks; if the two ever diverge (a refactor changing phase
  // structure), total op counts and outputs must flag it.
  const auto model = MachineModel::paper_x5670();
  const auto values = make_unsorted_values(50000, 31);
  const unsigned p = 6;

  const SimResult sim = simulate_merge_sort(values, p, model);

  auto real = values;
  ThreadPool serial(0);
  std::vector<OpCounts> counts(p);
  parallel_merge_sort(real.data(), real.size(), Executor{&serial, p},
                      std::less<>{}, std::span<OpCounts>(counts));
  EXPECT_TRUE(std::is_sorted(real.begin(), real.end()));

  OpCounts real_totals;
  for (const auto& c : counts) real_totals += c;
  EXPECT_EQ(sim.totals.compares, real_totals.compares);
  EXPECT_EQ(sim.totals.moves, real_totals.moves);
  EXPECT_EQ(sim.totals.search_steps, real_totals.search_steps);
}

TEST(Simulate, SegmentedDriverMatchesRealAlgorithmExactly) {
  const auto model = MachineModel::paper_x5670();
  const auto input = make_merge_input(Dist::kClustered, 20000, 17000, 33);
  const unsigned p = 5;
  SegmentedConfig config;
  config.segment_length = 777;

  const SimResult sim =
      simulate_segmented_merge(input.a, input.b, p, model, config);

  ThreadPool serial(0);
  std::vector<OpCounts> counts(p);
  std::vector<std::int32_t> out(37000);
  segmented_parallel_merge(input.a.data(), 20000, input.b.data(), 17000,
                           out.data(), config, Executor{&serial, p},
                           std::less<>{}, std::span<OpCounts>(counts));
  OpCounts real_totals;
  for (const auto& c : counts) real_totals += c;
  EXPECT_EQ(sim.totals.compares, real_totals.compares);
  EXPECT_EQ(sim.totals.moves, real_totals.moves);
  EXPECT_EQ(sim.totals.stages, real_totals.stages);
}

}  // namespace
}  // namespace mp::pram
