// Tests for core/segmented_merge.hpp (Algorithm 2): correctness across
// distributions / segment lengths / thread counts, cyclic-buffer edge
// cases, stats reporting, Lemma 15 / Theorem 16 invariants and stability.

#include "core/segmented_merge.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "test_support.hpp"
#include "util/data_gen.hpp"

namespace mp {
namespace {

class SegmentedMergeParam
    : public ::testing::TestWithParam<std::tuple<Dist, std::size_t, unsigned>> {
};

TEST_P(SegmentedMergeParam, MatchesReference) {
  const auto [dist, seg_len, threads] = GetParam();
  const auto input = make_merge_input(dist, 1000, 777, 53);
  std::vector<std::int32_t> out(1777);
  SegmentedConfig config;
  config.segment_length = seg_len;
  const auto stats = segmented_parallel_merge(
      input.a.data(), 1000, input.b.data(), 777, out.data(), config,
      Executor{nullptr, threads});
  EXPECT_EQ(out, test::reference_merge(input.a, input.b));
  // Segment count: ceil(total / L).
  EXPECT_EQ(stats.segments, (1777 + seg_len - 1) / seg_len);
  // Lemma 15: staged totals never exceed the inputs, and everything that
  // is consumed was staged.
  EXPECT_EQ(stats.staged_a, 1000u);
  EXPECT_EQ(stats.staged_b, 777u);
}

INSTANTIATE_TEST_SUITE_P(
    DistsSegsThreads, SegmentedMergeParam,
    ::testing::Combine(::testing::ValuesIn(kAllDists),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{64}, std::size_t{333},
                                         std::size_t{1777},
                                         std::size_t{5000}),
                       ::testing::Values(1u, 3u, 8u)),
    [](const auto& pinfo) {
      return to_string(std::get<0>(pinfo.param)) + "_L" +
             std::to_string(std::get<1>(pinfo.param)) + "_p" +
             std::to_string(std::get<2>(pinfo.param));
    });

TEST(SegmentedMerge, DefaultSegmentLengthFollowsCacheRule) {
  // L = (cache_bytes / elem) / 3 (the paper's L = C/3).
  SegmentedConfig config;
  config.cache_bytes = 32 * 1024;
  EXPECT_EQ(config.resolve_segment_length<std::int32_t>(),
            (32u * 1024 / 4) / 3);
  EXPECT_EQ(config.resolve_segment_length<std::int64_t>(),
            (32u * 1024 / 8) / 3);
  SegmentedConfig explicit_len;
  explicit_len.segment_length = 123;
  EXPECT_EQ(explicit_len.resolve_segment_length<std::int32_t>(), 123u);
}

TEST(SegmentedMerge, EmptyInputs) {
  SegmentedConfig config;
  config.segment_length = 8;
  std::vector<std::int32_t> a{1, 2, 3}, empty, out(3);
  auto stats = segmented_parallel_merge(a.data(), 3, empty.data(), 0,
                                        out.data(), config);
  EXPECT_EQ(out, a);
  EXPECT_EQ(stats.segments, 1u);
  out.assign(3, 0);
  segmented_parallel_merge(empty.data(), 0, a.data(), 3, out.data(), config);
  EXPECT_EQ(out, a);
  std::vector<std::int32_t> none;
  stats = segmented_parallel_merge(none.data(), 0, none.data(), 0,
                                   none.data(), config);
  EXPECT_EQ(stats.segments, 0u);
}

TEST(SegmentedMerge, StableAcrossSegments) {
  const auto input = make_keyed_input(2000, 2000, 5, 59);
  std::vector<KeyedRecord> out(4000);
  SegmentedConfig config;
  config.segment_length = 97;  // prime: boundaries fall mid-tie constantly
  segmented_parallel_merge(input.a.data(), 2000, input.b.data(), 2000,
                           out.data(), config, Executor{nullptr, 4});
  for (std::size_t i = 1; i < out.size(); ++i) {
    ASSERT_LE(out[i - 1].key, out[i].key);
    if (out[i - 1].key == out[i].key) {
      ASSERT_LT(out[i - 1].payload, out[i].payload) << "at " << i;
    }
  }
}

TEST(SegmentedMerge, CyclicViewWrapsCorrectly) {
  const std::vector<std::int32_t> storage{10, 11, 12, 13, 14};
  const CyclicView<std::int32_t> view(storage.data(), 5, 3);
  EXPECT_EQ(view[0], 13);
  EXPECT_EQ(view[1], 14);
  EXPECT_EQ(view[2], 10);
  EXPECT_EQ(view[4], 12);
  const auto shifted = view + 2;
  EXPECT_EQ(shifted[0], 10);
  EXPECT_EQ(shifted[2], 12);
}

TEST(SegmentedMerge, EquivalentToParallelMergeOnLargeInput) {
  const auto input = make_merge_input(Dist::kClustered, 50000, 49999, 61);
  std::vector<std::int32_t> out(99999);
  SegmentedConfig config;  // host-L1-derived default L
  segmented_parallel_merge(input.a.data(), 50000, input.b.data(), 49999,
                           out.data(), config, Executor{nullptr, 6});
  EXPECT_EQ(out, test::reference_merge(input.a, input.b));
}

TEST(SegmentedMerge, LinearizationIsByteExactAtEveryWrapOffset) {
  // Ring-window linearization (tentpole c): with linearize_wrapped on,
  // wrapped staged windows are copied flat and merged by the dispatched
  // kernel; with it off they take the CyclicView + scalar path. The two
  // must agree byte for byte. Sweeping the A-side length through a full
  // ring period (L consecutive sizes) drives the ring heads through every
  // wrap offset, because the heads advance by the data-dependent consumed
  // counts modulo L.
  constexpr std::size_t kL = 48;
  for (std::size_t delta = 0; delta < kL; ++delta) {
    const std::size_t m = 600 + delta;
    const auto input = make_merge_input(Dist::kClustered, m, 555, 71 + delta);
    std::vector<std::int32_t> flat_out(m + 555), ring_out(m + 555);
    SegmentedConfig config;
    config.segment_length = kL;
    config.linearize_wrapped = true;
    const auto flat_stats = segmented_parallel_merge(
        input.a.data(), m, input.b.data(), 555, flat_out.data(), config,
        Executor{nullptr, 3});
    config.linearize_wrapped = false;
    const auto ring_stats = segmented_parallel_merge(
        input.a.data(), m, input.b.data(), 555, ring_out.data(), config,
        Executor{nullptr, 3});
    ASSERT_EQ(flat_out, ring_out) << "delta=" << delta;
    EXPECT_EQ(ring_stats.linearized_windows, 0u);
    EXPECT_EQ(flat_stats.segments, ring_stats.segments);
  }
}

TEST(SegmentedMerge, LinearizationActuallyEngagesOnWrappedWindows) {
  // Guard against the flag silently becoming a no-op: a non-power-of-two
  // segment length over a long merge must produce wrapped windows, and
  // with the flag on (plus a vector kernel selected) they must be counted
  // as linearized. Skipped where no vector kernel exists — the gate keeps
  // the copy off on scalar-only hosts by design.
  if (!kernels::is_vector_kernel(kernels::widest_supported()))
    GTEST_SKIP() << "no vector kernel on this host/build";
  const auto input = make_merge_input(Dist::kUniform, 7001, 6400, 83);
  std::vector<std::int32_t> out(13401);
  SegmentedConfig config;
  config.segment_length = 192;
  config.linearize_wrapped = true;
  const auto stats = segmented_parallel_merge(input.a.data(), 7001,
                                              input.b.data(), 6400,
                                              out.data(), config,
                                              Executor{nullptr, 3});
  EXPECT_EQ(out, test::reference_merge(input.a, input.b));
  EXPECT_GT(stats.linearized_windows, 0u);
  EXPECT_GT(stats.linearized_elements, 0u);
}

TEST(SegmentedMerge, LinearizationStaysOffForNonVectorTypes) {
  // KeyedRecord merges are not vector-eligible; the trait keeps the
  // linearize slabs unallocated and the counters at zero, flag or no
  // flag.
  const auto keyed = make_keyed_input(900, 800, 5, 0x91);
  std::vector<KeyedRecord> out(1700);
  SegmentedConfig config;
  config.segment_length = 96;
  config.linearize_wrapped = true;
  const auto stats = segmented_parallel_merge(
      keyed.a.data(), keyed.a.size(), keyed.b.data(), keyed.b.size(),
      out.data(), config, Executor{nullptr, 3});
  std::vector<KeyedRecord> want(1700);
  std::merge(keyed.a.begin(), keyed.a.end(), keyed.b.begin(), keyed.b.end(),
             want.begin());
  EXPECT_EQ(out, want);
  EXPECT_EQ(stats.linearized_windows, 0u);
  EXPECT_EQ(stats.linearized_elements, 0u);
}

TEST(SegmentedMerge, InstrumentStageCountsEqualInputSizes) {
  const auto input = make_merge_input(Dist::kUniform, 1500, 900, 67);
  std::vector<std::int32_t> out(2400);
  SegmentedConfig config;
  config.segment_length = 128;
  ThreadPool serial(0);
  std::vector<OpCounts> counts(4);
  segmented_parallel_merge(input.a.data(), 1500, input.b.data(), 900,
                           out.data(), config, Executor{&serial, 4},
                           std::less<>{}, std::span<OpCounts>(counts));
  std::uint64_t stages = 0, moves = 0;
  for (const auto& c : counts) stages += c.stages;
  EXPECT_EQ(stages, 2400u);  // every input element staged exactly once
  for (const auto& c : counts) moves += c.moves;
  // Each output element: one move in the segment merge + one write-back.
  EXPECT_EQ(moves, 2 * 2400u);
}

}  // namespace
}  // namespace mp
