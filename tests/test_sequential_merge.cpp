// Tests for core/sequential_merge.hpp: the bounded-step kernel, the full
// sequential merge, the branchless ablation kernel, stability, custom
// comparators and instrumentation counts.

#include "core/sequential_merge.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "kernels/kernels.hpp"
#include "test_support.hpp"
#include "util/data_gen.hpp"

namespace mp {
namespace {

TEST(SequentialMerge, MatchesStdMergeOnAllDistributions) {
  for (Dist dist : kAllDists) {
    const auto input = make_merge_input(dist, 333, 512, 11);
    std::vector<std::int32_t> out(input.a.size() + input.b.size());
    sequential_merge(input.a.data(), input.a.size(), input.b.data(),
                     input.b.size(), out.data());
    EXPECT_EQ(out, test::reference_merge(input.a, input.b))
        << to_string(dist);
  }
}

TEST(SequentialMerge, EmptyInputs) {
  const std::vector<std::int32_t> a{1, 2, 3};
  std::vector<std::int32_t> out(3);
  sequential_merge(a.data(), 3, a.data(), 0, out.data());
  EXPECT_EQ(out, a);
  sequential_merge(a.data(), 0, a.data(), 3, out.data());
  EXPECT_EQ(out, a);
  // Both empty: must not write or crash.
  sequential_merge(a.data(), 0, a.data(), 0, out.data());
}

TEST(SequentialMerge, StableAPriority) {
  const auto input = make_keyed_input(200, 200, 10, 21);
  std::vector<KeyedRecord> out(400);
  sequential_merge(input.a.data(), input.a.size(), input.b.data(),
                   input.b.size(), out.data());
  // Equal keys: all payloads from A (origin tag 0) precede those from B,
  // and within each origin the original order is preserved.
  for (std::size_t i = 1; i < out.size(); ++i) {
    if (out[i - 1].key == out[i].key) {
      EXPECT_LT(out[i - 1].payload, out[i].payload) << "at " << i;
    }
  }
}

TEST(MergeSteps, PartialMergeResumesCorrectly) {
  const auto input = make_merge_input(Dist::kClustered, 500, 500, 31);
  const auto expected = test::reference_merge(input.a, input.b);

  // Merge in randomly-sized chunks, resuming positions between calls.
  std::vector<std::int32_t> out(1000);
  std::size_t i = 0, j = 0, written = 0;
  const std::size_t chunks[] = {1, 7, 13, 100, 379, 500};
  for (std::size_t chunk : chunks) {
    const std::size_t steps = std::min(chunk, out.size() - written);
    merge_steps(input.a.data(), 500, input.b.data(), 500, &i, &j,
                out.data() + written, steps);
    written += steps;
    EXPECT_EQ(i + j, written);
  }
  merge_steps(input.a.data(), 500, input.b.data(), 500, &i, &j,
              out.data() + written, out.size() - written);
  EXPECT_EQ(out, expected);
}

TEST(MergeSteps, ZeroSteps) {
  const std::vector<std::int32_t> a{1}, b{2};
  std::size_t i = 0, j = 0;
  std::int32_t sink = -1;
  merge_steps(a.data(), 1, b.data(), 1, &i, &j, &sink, 0);
  EXPECT_EQ(i, 0u);
  EXPECT_EQ(j, 0u);
  EXPECT_EQ(sink, -1);
}

TEST(MergeSteps, CustomComparatorDescending) {
  std::vector<std::int32_t> a{9, 5, 1};
  std::vector<std::int32_t> b{8, 3, 2};
  std::vector<std::int32_t> out(6);
  std::size_t i = 0, j = 0;
  merge_steps(a.data(), 3, b.data(), 3, &i, &j, out.data(), 6,
              std::greater<>{});
  const std::vector<std::int32_t> expected{9, 8, 5, 3, 2, 1};
  EXPECT_EQ(out, expected);
}

TEST(MergeSteps, ProjectionComparator) {
  // Merge strings by length: exercises non-trivial element types.
  std::vector<std::string> a{"a", "ccc", "eeeee"};
  std::vector<std::string> b{"bb", "dddd"};
  std::vector<std::string> out(5);
  std::size_t i = 0, j = 0;
  auto by_len = [](const std::string& x, const std::string& y) {
    return x.size() < y.size();
  };
  merge_steps(a.data(), 3, b.data(), 2, &i, &j, out.data(), 5, by_len);
  const std::vector<std::string> expected{"a", "bb", "ccc", "dddd", "eeeee"};
  EXPECT_EQ(out, expected);
}

TEST(MergeSteps, InstrumentCounts) {
  const auto input = make_merge_input(Dist::kUniform, 1000, 1000, 41);
  std::vector<std::int32_t> out(2000);
  OpCounts ops;
  std::size_t i = 0, j = 0;
  merge_steps(input.a.data(), 1000, input.b.data(), 1000, &i, &j, out.data(),
              2000, std::less<>{}, &ops);
  EXPECT_EQ(ops.moves, 2000u);
  // Compares: one per step while both sides live; between N/2 and N.
  EXPECT_GE(ops.compares, 1000u);
  EXPECT_LE(ops.compares, 2000u);
}

TEST(BranchlessMerge, MatchesGuardedKernelWithinSafeRegion) {
  for (Dist dist : {Dist::kUniform, Dist::kInterleaved, Dist::kAllEqual,
                    Dist::kClustered}) {
    const auto input = make_merge_input(dist, 400, 400, 51);
    const auto expected = test::reference_merge(input.a, input.b);

    std::vector<std::int32_t> out(800);
    std::size_t i = 0, j = 0;
    // The intended usage pattern: the bounded branchless front, then the
    // guarded kernel for whatever tail it could not prove safe.
    const std::size_t written = kernels::branchless_merge_bounded(
        input.a.data(), 400, input.b.data(), 400, &i, &j, out.data(), 800);
    merge_steps(input.a.data(), 400, input.b.data(), 400, &i, &j,
                out.data() + written, 800 - written);
    EXPECT_EQ(out, expected) << to_string(dist);
  }
}

TEST(AdaptiveMerge, MatchesReferenceOnAllDistributions) {
  for (Dist dist : kAllDists) {
    constexpr std::pair<std::size_t, std::size_t> kShapes[] = {
        {500, 400}, {500, 0}, {0, 400}, {1, 1}, {7, 1000}};
    for (const auto& [m, n] : kShapes) {
      const auto input = make_merge_input(dist, m, n, 600 + m + n);
      std::vector<std::int32_t> out(m + n);
      adaptive_merge(input.a.data(), m, input.b.data(), n, out.data());
      EXPECT_EQ(out, test::reference_merge(input.a, input.b))
          << to_string(dist) << " " << m << "x" << n;
    }
  }
}

TEST(AdaptiveMerge, StableAPriority) {
  const auto input = make_keyed_input(500, 500, 6, 61);
  std::vector<KeyedRecord> out(1000);
  adaptive_merge(input.a.data(), 500, input.b.data(), 500, out.data());
  for (std::size_t i = 1; i < out.size(); ++i) {
    ASSERT_LE(out[i - 1].key, out[i].key);
    if (out[i - 1].key == out[i].key) {
      ASSERT_LT(out[i - 1].payload, out[i].payload) << "at " << i;
    }
  }
}

TEST(AdaptiveMerge, GallopingWinsOnRunStructuredInput) {
  // organ_pipe: alternating 128-long runs. The adaptive kernel should do
  // roughly 2·log(128) comparisons per run instead of 128.
  const auto runs = make_merge_input(Dist::kOrganPipe, 1 << 15, 1 << 15, 63);
  OpCounts adaptive_ops, classic_ops;
  std::vector<std::int32_t> out(1 << 16);
  adaptive_merge(runs.a.data(), runs.a.size(), runs.b.data(), runs.b.size(),
                 out.data(), std::less<>{}, &adaptive_ops);
  std::size_t i = 0, j = 0;
  merge_steps(runs.a.data(), runs.a.size(), runs.b.data(), runs.b.size(),
              &i, &j, out.data(), 1 << 16, std::less<>{}, &classic_ops);
  EXPECT_LT(adaptive_ops.compares * 4, classic_ops.compares)
      << "adaptive " << adaptive_ops.compares << " vs classic "
      << classic_ops.compares;

  // Worst case (perfectly interleaved): bounded overhead, not blow-up.
  const auto inter =
      make_merge_input(Dist::kInterleaved, 1 << 14, 1 << 14, 65);
  OpCounts a_ops, c_ops;
  adaptive_merge(inter.a.data(), inter.a.size(), inter.b.data(),
                 inter.b.size(), out.data(), std::less<>{}, &a_ops);
  i = j = 0;
  merge_steps(inter.a.data(), inter.a.size(), inter.b.data(),
              inter.b.size(), &i, &j, out.data(), 1 << 15, std::less<>{},
              &c_ops);
  EXPECT_LT(a_ops.compares, 3 * c_ops.compares);
}

TEST(BranchlessMerge, SafeStepsNeverExceedsEitherRemainder) {
  EXPECT_EQ(branchless_safe_steps(10, 10, 0, 0, 100), 10u);
  EXPECT_EQ(branchless_safe_steps(10, 10, 9, 0, 100), 1u);
  EXPECT_EQ(branchless_safe_steps(10, 10, 10, 0, 100), 0u);
  EXPECT_EQ(branchless_safe_steps(10, 10, 3, 8, 1), 1u);
}

}  // namespace
}  // namespace mp
