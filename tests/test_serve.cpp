// Tests of the serving layer (src/serve/): queue lifecycle (submit /
// cancel / shutdown-drain), typed admission-control rejections, watermark
// hysteresis, batch-assembly boundaries (empty queue, singleton,
// max-batch caps, width segregation, solo cuts), merge execution
// (buffered and streaming), and the deterministic closed-loop load
// generator including its serve.* span-percentile surface.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/percentiles.hpp"
#include "obs/trace.hpp"
#include "serve/loadgen.hpp"
#include "serve/serve.hpp"
#include "util/rng.hpp"

namespace {

using namespace mp;
using namespace mp::serve;

std::vector<std::int32_t> random_keys(std::uint64_t seed, std::size_t n) {
  Xoshiro256 rng(seed);
  std::vector<std::int32_t> keys(n);
  for (auto& v : keys) v = static_cast<std::int32_t>(rng());
  return keys;
}

Request sort_request(std::uint64_t seed, std::size_t n,
                     std::uint64_t session = 0, std::uint64_t seq = 0) {
  Request req;
  req.kind = RequestKind::kSort;
  req.width = KeyWidth::k32;
  req.keys32 = random_keys(seed, n);
  req.session = session;
  req.sequence = seq;
  return req;
}

/// A manual-pump server config sized so tests control every batch.
ServerConfig manual_config() {
  ServerConfig cfg;
  cfg.manual_pump = true;
  cfg.record_batch_sizes = true;
  return cfg;
}

TEST(ServeQueue, SubmitPumpCompleteSorted) {
  Server server(manual_config());
  std::vector<Response> responses;
  for (int i = 0; i < 5; ++i) {
    const auto res =
        server.submit(sort_request(100 + i, 1000, /*session=*/0,
                                   /*seq=*/static_cast<std::uint64_t>(i)),
                      [&](Response&& r) { responses.push_back(std::move(r)); });
    ASSERT_TRUE(res.accepted());
    EXPECT_GT(res.id, 0u);
  }
  EXPECT_EQ(server.queue_depth(), 5u);
  EXPECT_GT(server.pump(), 0u);
  ASSERT_EQ(responses.size(), 5u);
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const Response& r = responses[i];
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.sequence, i);  // FIFO delivery
    EXPECT_EQ(r.keys32.size(), 1000u);
    EXPECT_TRUE(std::is_sorted(r.keys32.begin(), r.keys32.end()));
    EXPECT_GE(r.service_ns, 0u);
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.accepted, 5u);
  EXPECT_EQ(stats.completed, 5u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(ServeQueue, CancelAnswersWithoutExecuting) {
  Server server(manual_config());
  std::vector<Response> responses;
  const auto done = [&](Response&& r) { responses.push_back(std::move(r)); };
  const auto a = server.submit(sort_request(1, 64), done);
  const auto b = server.submit(sort_request(2, 64), done);
  const auto c = server.submit(sort_request(3, 64), done);
  ASSERT_TRUE(a.accepted() && b.accepted() && c.accepted());

  EXPECT_TRUE(server.cancel(b.id));
  ASSERT_EQ(responses.size(), 1u);  // cancelled completes immediately
  EXPECT_EQ(responses[0].id, b.id);
  EXPECT_EQ(responses[0].outcome, Outcome::kCancelled);
  EXPECT_FALSE(server.cancel(b.id));      // already gone
  EXPECT_FALSE(server.cancel(999999u));   // unknown id

  server.pump();
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_TRUE(responses[1].ok());
  EXPECT_TRUE(responses[2].ok());
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(ServeQueue, ShutdownDrainAnswersEverything) {
  Server server(manual_config());
  std::size_t answered = 0;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(server
                    .submit(sort_request(10 + i, 256),
                            [&](Response&& r) { answered += r.ok(); })
                    .accepted());
  }
  server.shutdown(/*drain=*/true);
  EXPECT_EQ(answered, 8u);
  EXPECT_EQ(server.queue_depth(), 0u);
  // Post-shutdown submits are refused with the typed reason.
  const auto late = server.submit(sort_request(1, 16), [](Response&&) {});
  EXPECT_FALSE(late.accepted());
  EXPECT_EQ(late.rejected, RejectReason::kShutdown);
  server.shutdown();  // idempotent
}

TEST(ServeQueue, ShutdownWithoutDrainCancelsQueued) {
  Server server(manual_config());
  std::vector<Outcome> outcomes;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(server
                    .submit(sort_request(i, 128),
                            [&](Response&& r) { outcomes.push_back(r.outcome); })
                    .accepted());
  }
  server.shutdown(/*drain=*/false);
  ASSERT_EQ(outcomes.size(), 4u);  // conservation: every accept answered
  for (const Outcome o : outcomes) EXPECT_EQ(o, Outcome::kCancelled);
  EXPECT_EQ(server.stats().cancelled, 4u);
}

TEST(ServeQueue, ThreadedServerDrainsOnShutdown) {
  ServerConfig cfg;  // dispatcher-threaded
  std::atomic<std::size_t> answered{0};
  Server server(cfg);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(server
                    .submit(sort_request(i, 2048),
                            [&](Response&& r) {
                              if (r.ok() &&
                                  std::is_sorted(r.keys32.begin(),
                                                 r.keys32.end()))
                                ++answered;
                            })
                    .accepted());
  }
  server.shutdown(/*drain=*/true);
  EXPECT_EQ(answered.load(), 16u);
}

TEST(ServeAdmission, TypedRejections) {
  ServerConfig cfg = manual_config();
  cfg.max_request_elements = 100;
  Server server(cfg);
  const auto drop = [](Response&&) {};

  // Oversized.
  auto res = server.submit(sort_request(1, 101), drop);
  EXPECT_EQ(res.rejected, RejectReason::kOversized);

  // Malformed: unsorted merge input.
  Request merge;
  merge.kind = RequestKind::kMerge;
  merge.keys32 = {3, 1, 2};
  merge.other32 = {1, 2, 3};
  res = server.submit(std::move(merge), drop);
  EXPECT_EQ(res.rejected, RejectReason::kMalformed);

  // Malformed: payload in the wrong width lane.
  Request wrong;
  wrong.width = KeyWidth::k32;
  wrong.keys64 = {1, 2, 3};
  res = server.submit(std::move(wrong), drop);
  EXPECT_EQ(res.rejected, RejectReason::kMalformed);

  // Malformed: a sort carrying a second stream.
  Request extra;
  extra.kind = RequestKind::kSort;
  extra.keys32 = {1, 2};
  extra.other32 = {3};
  res = server.submit(std::move(extra), drop);
  EXPECT_EQ(res.rejected, RejectReason::kMalformed);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected, 4u);
  EXPECT_EQ(stats.rejected_oversized, 1u);
  EXPECT_EQ(stats.rejected_malformed, 3u);
  EXPECT_EQ(stats.accepted, 0u);
}

TEST(ServeAdmission, QueueFullAtTheRim) {
  ServerConfig cfg = manual_config();
  cfg.queue_capacity = 2;
  cfg.high_watermark = 2;  // shedding and the rim coincide
  cfg.low_watermark = 1;
  Server server(cfg);
  const auto drop = [](Response&&) {};
  EXPECT_TRUE(server.submit(sort_request(1, 8), drop).accepted());
  EXPECT_TRUE(server.submit(sort_request(2, 8), drop).accepted());
  const auto res = server.submit(sort_request(3, 8), drop);
  EXPECT_EQ(res.rejected, RejectReason::kQueueFull);
  server.shutdown();
}

TEST(ServeAdmission, WatermarkHysteresis) {
  ServerConfig cfg = manual_config();
  cfg.queue_capacity = 8;
  cfg.high_watermark = 4;
  cfg.low_watermark = 2;
  cfg.max_batch_requests = 1;  // one request per pump for exact control
  Server server(cfg);
  const auto drop = [](Response&&) {};

  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(server.submit(sort_request(i, 16), drop).accepted());
  EXPECT_TRUE(server.shedding());  // crossed high watermark

  // Shedding rejects with kBackpressure, not kQueueFull (depth 4 < 8).
  auto res = server.submit(sort_request(9, 16), drop);
  EXPECT_EQ(res.rejected, RejectReason::kBackpressure);

  // Draining to depth 3 (> low) must NOT clear shedding — hysteresis.
  EXPECT_EQ(server.pump(1), 1u);
  EXPECT_EQ(server.queue_depth(), 3u);
  EXPECT_TRUE(server.shedding());
  EXPECT_EQ(server.submit(sort_request(9, 16), drop).rejected,
            RejectReason::kBackpressure);

  // Draining to the low watermark clears it; submits flow again.
  EXPECT_EQ(server.pump(1), 1u);
  EXPECT_EQ(server.queue_depth(), 2u);
  EXPECT_FALSE(server.shedding());
  EXPECT_TRUE(server.submit(sort_request(10, 16), drop).accepted());

  // Refill to the high watermark: a second shed transition.
  ASSERT_TRUE(server.submit(sort_request(11, 16), drop).accepted());
  EXPECT_TRUE(server.shedding());
  EXPECT_EQ(server.stats().shed_transitions, 2u);
  server.shutdown();
}

TEST(ServeBatch, EmptyQueuePumpsNothing) {
  Server server(manual_config());
  EXPECT_EQ(server.pump(), 0u);
  EXPECT_TRUE(server.stats().batch_sizes.empty());
}

TEST(ServeBatch, SingletonAndMaxBatchBoundaries) {
  ServerConfig cfg = manual_config();
  cfg.max_batch_requests = 4;
  Server server(cfg);
  std::vector<Response> responses;
  const auto done = [&](Response&& r) { responses.push_back(std::move(r)); };

  // A single small sort is still a (singleton) coalesced batch.
  ASSERT_TRUE(server.submit(sort_request(1, 64), done).accepted());
  server.pump();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].batched);

  // Nine small sorts at cap 4 pack 4+4+1.
  responses.clear();
  for (int i = 0; i < 9; ++i)
    ASSERT_TRUE(server.submit(sort_request(i, 64), done).accepted());
  server.pump();
  ASSERT_EQ(responses.size(), 9u);
  const ServerStats stats = server.stats();
  ASSERT_EQ(stats.batch_sizes.size(), 4u);  // 1 + 3 batches
  EXPECT_EQ(stats.batch_sizes[1], 4u);
  EXPECT_EQ(stats.batch_sizes[2], 4u);
  EXPECT_EQ(stats.batch_sizes[3], 1u);
  // Requests in one batch share a batch ordinal; batches are ordered.
  EXPECT_EQ(responses[0].batch, responses[3].batch);
  EXPECT_NE(responses[3].batch, responses[4].batch);
}

TEST(ServeBatch, ElementBudgetBoundsABatch) {
  ServerConfig cfg = manual_config();
  cfg.max_batch_requests = 64;
  cfg.max_batch_elements = 250;
  Server server(cfg);
  const auto drop = [](Response&&) {};
  for (int i = 0; i < 6; ++i)
    ASSERT_TRUE(server.submit(sort_request(i, 100), drop).accepted());
  server.pump();
  // 100+100 fits in 250; a third would overflow: batches of 2.
  const ServerStats stats = server.stats();
  ASSERT_EQ(stats.batch_sizes.size(), 3u);
  for (const std::size_t s : stats.batch_sizes) EXPECT_EQ(s, 2u);
}

TEST(ServeBatch, MixedKeyWidthsNeverShareABatch) {
  Server server(manual_config());
  const auto drop = [](Response&&) {};
  for (int i = 0; i < 4; ++i) {
    Request req;
    req.width = i < 2 ? KeyWidth::k32 : KeyWidth::k64;
    if (i < 2)
      req.keys32 = random_keys(i, 64);
    else {
      Xoshiro256 rng(static_cast<std::uint64_t>(i));
      req.keys64.resize(64);
      for (auto& v : req.keys64) v = static_cast<std::int64_t>(rng());
    }
    ASSERT_TRUE(server.submit(std::move(req), drop).accepted());
  }
  server.pump();
  // k32,k32 coalesce; the width flip cuts the batch: {2, 2}.
  const ServerStats stats = server.stats();
  ASSERT_EQ(stats.batch_sizes.size(), 2u);
  EXPECT_EQ(stats.batch_sizes[0], 2u);
  EXPECT_EQ(stats.batch_sizes[1], 2u);
}

TEST(ServeBatch, SoloThresholdCutsLargeRequestsOut) {
  ServerConfig cfg = manual_config();
  cfg.solo_threshold = 1000;
  Server server(cfg);
  std::vector<Response> responses;
  const auto done = [&](Response&& r) { responses.push_back(std::move(r)); };
  ASSERT_TRUE(server.submit(sort_request(1, 100), done).accepted());
  ASSERT_TRUE(server.submit(sort_request(2, 5000), done).accepted());  // solo
  ASSERT_TRUE(server.submit(sort_request(3, 100), done).accepted());
  server.pump();
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_TRUE(responses[0].batched);
  EXPECT_FALSE(responses[1].batched);  // at/above the threshold: solo
  EXPECT_TRUE(responses[2].batched);
  EXPECT_TRUE(std::is_sorted(responses[1].keys32.begin(),
                             responses[1].keys32.end()));
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.batched_requests, 2u);
  EXPECT_EQ(stats.solo_requests, 1u);
}

TEST(ServeBatch, BatchingOffDispatchesEveryRequestSolo) {
  ServerConfig cfg = manual_config();
  cfg.batching = false;
  Server server(cfg);
  const auto drop = [](Response&&) {};
  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(server.submit(sort_request(i, 64), drop).accepted());
  server.pump();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.batches, 5u);
  EXPECT_EQ(stats.solo_requests, 5u);
  EXPECT_EQ(stats.batched_requests, 0u);
}

TEST(ServeMerge, BufferedMergeMatchesStdMerge) {
  Server server(manual_config());
  Xoshiro256 rng(7);
  std::vector<std::int32_t> a(5000), b(3000);
  for (auto& v : a) v = static_cast<std::int32_t>(rng.bounded(1000));
  for (auto& v : b) v = static_cast<std::int32_t>(rng.bounded(1000));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<std::int32_t> want(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), want.begin());

  Request req;
  req.kind = RequestKind::kMerge;
  req.keys32 = a;
  req.other32 = b;
  std::vector<Response> responses;
  ASSERT_TRUE(
      server
          .submit(std::move(req),
                  [&](Response&& r) { responses.push_back(std::move(r)); })
          .accepted());
  server.pump();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].ok());
  EXPECT_FALSE(responses[0].batched);  // merges never coalesce
  EXPECT_EQ(responses[0].keys32, want);
}

TEST(ServeMerge, StreamingSinkDeliversChunksInOrder) {
  ServerConfig cfg = manual_config();
  cfg.stream_chunk = 512;  // force several push/pull rounds
  Server server(cfg);
  Xoshiro256 rng(11);
  std::vector<std::int64_t> a(4000), b(4000);
  for (auto& v : a) v = static_cast<std::int64_t>(rng.bounded(5000));
  for (auto& v : b) v = static_cast<std::int64_t>(rng.bounded(5000));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::vector<std::int64_t> want(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), want.begin());

  Request req;
  req.kind = RequestKind::kMerge;
  req.width = KeyWidth::k64;
  req.keys64 = a;
  req.other64 = b;
  std::vector<std::int64_t> streamed;
  std::size_t chunks = 0;
  req.sink64 = [&](std::span<const std::int64_t> chunk) {
    streamed.insert(streamed.end(), chunk.begin(), chunk.end());
    ++chunks;
  };
  std::vector<Response> responses;
  ASSERT_TRUE(
      server
          .submit(std::move(req),
                  [&](Response&& r) { responses.push_back(std::move(r)); })
          .accepted());
  server.pump();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].ok());
  EXPECT_TRUE(responses[0].keys64.empty());  // payload went via the sink
  EXPECT_EQ(responses[0].streamed, want.size());
  EXPECT_GT(chunks, 1u);
  EXPECT_EQ(streamed, want);
}

TEST(ServeBatch, EmptyPayloadSortCompletes) {
  Server server(manual_config());
  std::vector<Response> responses;
  ASSERT_TRUE(
      server
          .submit(sort_request(1, 0),
                  [&](Response&& r) { responses.push_back(std::move(r)); })
          .accepted());
  server.pump();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].ok());
  EXPECT_TRUE(responses[0].keys32.empty());
}

// ---------------------------------------------------------------------------
// Deterministic closed-loop load generation (the simulated-clock run: a
// manual-pump server makes the whole loop single-threaded and replayable).

TEST(ServeLoadGen, DeterministicRunConservesAndOrders) {
  obs::reset_span_stats();
  obs::arm_span_stats();
  LoadGenConfig lg;
  lg.seed = 42;
  lg.sessions = 3;
  lg.requests = 60;
  lg.window = 4;
  lg.mix.min_elements = 16;
  lg.mix.max_elements = 512;
  lg.mix.merge_fraction = 0.25;
  lg.mix.width64_fraction = 0.3;

  const auto run = [&] {
    ServerConfig cfg = manual_config();
    cfg.queue_capacity = 32;
    Server server(cfg);
    const LoadGenReport rep = run_closed_loop(server, lg);
    const ServerStats stats = server.stats();
    return std::pair<LoadGenReport, ServerStats>(rep, stats);
  };
  const auto [rep1, stats1] = run();
  const auto [rep2, stats2] = run();
  obs::disarm_span_stats();

  // Conservation: requests in == responses + rejections; every accepted
  // request answered exactly once with its payload intact, in session
  // FIFO order.
  EXPECT_TRUE(rep1.conservation_ok);
  EXPECT_TRUE(rep1.ordering_ok);
  EXPECT_TRUE(rep1.payload_ok);
  EXPECT_EQ(rep1.submitted, 60u);
  EXPECT_EQ(rep1.completed, rep1.accepted);
  EXPECT_GT(rep1.batched, 0u);

  // Same seed, fresh server: identical logical outcome (timing aside).
  EXPECT_EQ(rep1.submitted, rep2.submitted);
  EXPECT_EQ(rep1.accepted, rep2.accepted);
  EXPECT_EQ(rep1.completed, rep2.completed);
  EXPECT_EQ(rep1.batched, rep2.batched);
  EXPECT_EQ(rep1.elements, rep2.elements);
  EXPECT_EQ(stats1.batches, stats2.batches);
  EXPECT_EQ(stats1.batch_sizes, stats2.batch_sizes);

  // The run fed the serve.* span-percentile surface the metrics JSON
  // exports (the --metrics-json satellite, in-process). In a full
  // MP_TRACE=0 build record_span_duration is inert and snapshots are
  // empty by contract.
  const auto snapshot = obs::span_stats_snapshot();
  bool request_seen = false, wait_seen = false, service_seen = false;
  for (const auto& stat : snapshot) {
    if (stat.name == "serve.request") request_seen = stat.count > 0;
    if (stat.name == "serve.queue_wait") wait_seen = stat.count > 0;
    if (stat.name == "serve.service") service_seen = stat.count > 0;
  }
  EXPECT_EQ(request_seen, obs::kTraceCompiledIn);
  EXPECT_EQ(wait_seen, obs::kTraceCompiledIn);
  EXPECT_EQ(service_seen, obs::kTraceCompiledIn);
  std::ostringstream json;
  obs::write_metrics_json(json);
  EXPECT_EQ(json.str().find("serve.request") != std::string::npos,
            obs::kTraceCompiledIn);
  obs::reset_span_stats();
}

TEST(ServeLoadGen, ThreadedClosedLoopConserves) {
  ServerConfig cfg;  // dispatcher-threaded
  cfg.queue_capacity = 64;
  Server server(cfg);
  LoadGenConfig lg;
  lg.seed = 7;
  lg.sessions = 2;
  lg.requests = 40;
  lg.window = 3;
  lg.mix.min_elements = 16;
  lg.mix.max_elements = 1024;
  lg.mix.merge_fraction = 0.2;
  const LoadGenReport rep = run_closed_loop(server, lg);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.completed, rep.accepted);
  EXPECT_GT(rep.throughput_rps(), 0.0);
  EXPECT_GE(rep.latency_ns(0.99), rep.latency_ns(0.5));
  server.shutdown();
}

}  // namespace
