// Tests for core/set_ops.hpp: all four operations against the std::set_*
// reference on every distribution (duplicate-heavy shapes are the point),
// at several thread counts, plus identities and edge cases.

#include "core/set_ops.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "test_support.hpp"
#include "util/data_gen.hpp"

namespace mp {
namespace {

std::vector<std::int32_t> ref_union(const std::vector<std::int32_t>& a,
                                    const std::vector<std::int32_t>& b) {
  std::vector<std::int32_t> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}
std::vector<std::int32_t> ref_inter(const std::vector<std::int32_t>& a,
                                    const std::vector<std::int32_t>& b) {
  std::vector<std::int32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}
std::vector<std::int32_t> ref_diff(const std::vector<std::int32_t>& a,
                                   const std::vector<std::int32_t>& b) {
  std::vector<std::int32_t> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}
std::vector<std::int32_t> ref_symdiff(const std::vector<std::int32_t>& a,
                                      const std::vector<std::int32_t>& b) {
  std::vector<std::int32_t> out;
  std::set_symmetric_difference(a.begin(), a.end(), b.begin(), b.end(),
                                std::back_inserter(out));
  return out;
}

class SetOpsParam
    : public ::testing::TestWithParam<std::tuple<Dist, unsigned>> {};

TEST_P(SetOpsParam, AllFourMatchStdReference) {
  const auto [dist, threads] = GetParam();
  const Executor exec{nullptr, threads};
  constexpr std::pair<std::size_t, std::size_t> kShapes[] = {
      {900, 700}, {900, 0}, {0, 700}, {1, 1}, {64, 2048}};
  for (const auto& [m, n] : kShapes) {
    const auto input = make_merge_input(dist, m, n, 301 + m + n);
    EXPECT_EQ(parallel_set_union(input.a, input.b, exec),
              ref_union(input.a, input.b))
        << "union " << to_string(dist) << " " << m << "x" << n;
    EXPECT_EQ(parallel_set_intersection(input.a, input.b, exec),
              ref_inter(input.a, input.b))
        << "inter " << to_string(dist) << " " << m << "x" << n;
    EXPECT_EQ(parallel_set_difference(input.a, input.b, exec),
              ref_diff(input.a, input.b))
        << "diff " << to_string(dist) << " " << m << "x" << n;
    EXPECT_EQ(parallel_set_symmetric_difference(input.a, input.b, exec),
              ref_symdiff(input.a, input.b))
        << "symdiff " << to_string(dist) << " " << m << "x" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DistsAndThreads, SetOpsParam,
    ::testing::Combine(::testing::ValuesIn(kAllDists),
                       ::testing::Values(1u, 3u, 8u, 16u)),
    [](const auto& pinfo) {
      return to_string(std::get<0>(pinfo.param)) + "_p" +
             std::to_string(std::get<1>(pinfo.param));
    });

TEST(SetOps, MultisetSemanticsOnDuplicates) {
  // A = {5 x3, 9 x1}, B = {5 x2, 7 x1}: union keeps max multiplicities,
  // intersection min, difference A's surplus.
  const std::vector<std::int32_t> a{5, 5, 5, 9};
  const std::vector<std::int32_t> b{5, 5, 7};
  EXPECT_EQ(parallel_set_union(a, b),
            (std::vector<std::int32_t>{5, 5, 5, 7, 9}));
  EXPECT_EQ(parallel_set_intersection(a, b),
            (std::vector<std::int32_t>{5, 5}));
  EXPECT_EQ(parallel_set_difference(a, b),
            (std::vector<std::int32_t>{5, 9}));
  EXPECT_EQ(parallel_set_symmetric_difference(a, b),
            (std::vector<std::int32_t>{5, 7, 9}));
}

TEST(SetOps, Identities) {
  const auto input = make_merge_input(Dist::kFewDuplicates, 5000, 5000, 307);
  const Executor exec{nullptr, 6};
  const auto u = parallel_set_union(input.a, input.b, exec);
  const auto i = parallel_set_intersection(input.a, input.b, exec);
  const auto d_ab = parallel_set_difference(input.a, input.b, exec);
  const auto d_ba = parallel_set_difference(input.b, input.a, exec);
  const auto s = parallel_set_symmetric_difference(input.a, input.b, exec);

  // |A ∪ B| + |A ∩ B| = |A| + |B|  (multiset identity).
  EXPECT_EQ(u.size() + i.size(), input.a.size() + input.b.size());
  // symdiff = (A \ B) ∪ (B \ A) with disjoint supports => sizes add.
  EXPECT_EQ(s.size(), d_ab.size() + d_ba.size());
  // A \ B merged with A ∩ B rebuilds A (as multisets).
  std::vector<std::int32_t> rebuilt;
  std::merge(d_ab.begin(), d_ab.end(), i.begin(), i.end(),
             std::back_inserter(rebuilt));
  EXPECT_EQ(rebuilt, input.a);
}

TEST(SetOps, DescendingComparator) {
  std::vector<std::int32_t> a{9, 7, 5, 1};
  std::vector<std::int32_t> b{8, 7, 2};
  std::vector<std::int32_t> out(7);
  const std::size_t n = parallel_set_union(a.data(), a.size(), b.data(),
                                           b.size(), out.data(), {},
                                           std::greater<>{});
  out.resize(n);
  std::vector<std::int32_t> expected;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(expected), std::greater<>{});
  EXPECT_EQ(out, expected);
}

TEST(SetOps, SingleValueUniverseManyThreads) {
  // Every element identical: the key-aligned cut machinery degenerates to
  // one giant run — correctness must survive total imbalance.
  const std::vector<std::int32_t> a(10000, 3), b(7000, 3);
  const Executor exec{nullptr, 16};
  EXPECT_EQ(parallel_set_union(a, b, exec).size(), 10000u);
  EXPECT_EQ(parallel_set_intersection(a, b, exec).size(), 7000u);
  EXPECT_EQ(parallel_set_difference(a, b, exec).size(), 3000u);
  EXPECT_EQ(parallel_set_symmetric_difference(a, b, exec).size(), 3000u);
}

}  // namespace
}  // namespace mp
