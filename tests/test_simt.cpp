// Tests for the SIMT substrate (S20): the coalescing/bank-conflict
// arithmetic of the machine model, correctness of both simulated GPU
// merge kernels, and the headline traffic relationship (staged ≪ direct).

#include "simt/gpu_merge.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "simt/simt_machine.hpp"
#include "test_support.hpp"
#include "util/data_gen.hpp"

namespace mp::simt {
namespace {

TEST(SimtMachine, CoalescedWarpIsOneTransaction) {
  CtaContext cta(SimtConfig{});
  std::vector<std::uint64_t> addrs(32);
  for (unsigned k = 0; k < 32; ++k) addrs[k] = 4096 + 4 * k;  // 128B span
  cta.warp_global_access(std::span<const std::uint64_t>(addrs));
  EXPECT_EQ(cta.stats().global_requests, 32u);
  EXPECT_EQ(cta.stats().global_transactions, 1u);
}

TEST(SimtMachine, ScatteredWarpIsOneTransactionPerLane) {
  CtaContext cta(SimtConfig{});
  std::vector<std::uint64_t> addrs(32);
  for (unsigned k = 0; k < 32; ++k) addrs[k] = 4096ull + 1024ull * k;
  cta.warp_global_access(std::span<const std::uint64_t>(addrs));
  EXPECT_EQ(cta.stats().global_transactions, 32u);
}

TEST(SimtMachine, MisalignedConsecutiveSpanIsTwoTransactions) {
  CtaContext cta(SimtConfig{});
  std::vector<std::uint64_t> addrs(32);
  for (unsigned k = 0; k < 32; ++k) addrs[k] = 4096 + 64 + 4 * k;
  cta.warp_global_access(std::span<const std::uint64_t>(addrs));
  EXPECT_EQ(cta.stats().global_transactions, 2u);
}

TEST(SimtMachine, SharedBankConflicts) {
  CtaContext cta(SimtConfig{});
  // Conflict-free: 32 consecutive words hit 32 distinct banks.
  std::vector<std::uint64_t> fine(32);
  for (unsigned k = 0; k < 32; ++k) fine[k] = 4 * k;
  cta.warp_shared_access(std::span<const std::uint64_t>(fine));
  EXPECT_EQ(cta.stats().bank_conflict_extra, 0u);

  // Worst case: stride of 32 words, every lane in bank 0.
  std::vector<std::uint64_t> bad(32);
  for (unsigned k = 0; k < 32; ++k) bad[k] = 4ull * 32 * k;
  cta.warp_shared_access(std::span<const std::uint64_t>(bad));
  EXPECT_EQ(cta.stats().bank_conflict_extra, 31u);

  // Broadcast: all lanes read the SAME word — free.
  std::vector<std::uint64_t> same(32, 64);
  cta.warp_shared_access(std::span<const std::uint64_t>(same));
  EXPECT_EQ(cta.stats().bank_conflict_extra, 31u);  // unchanged
}

class GpuKernels : public ::testing::TestWithParam<Dist> {};

TEST_P(GpuKernels, BothKernelsProduceTheStableMerge) {
  const Dist dist = GetParam();
  constexpr std::pair<std::size_t, std::size_t> kShapes[] = {
      {0, 0}, {1, 0}, {100, 3000}, {5000, 5000}, {4096, 4096}};
  for (const auto& [m, n] : kShapes) {
    const auto input = make_merge_input(dist, m, n, 1100 + m + n);
    const auto expected = test::reference_merge(input.a, input.b);
    EXPECT_EQ(gpu_merge_direct(input.a, input.b).output, expected)
        << "direct " << to_string(dist) << " " << m << "x" << n;
    EXPECT_EQ(gpu_merge_staged(input.a, input.b).output, expected)
        << "staged " << to_string(dist) << " " << m << "x" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(AllDists, GpuKernels, ::testing::ValuesIn(kAllDists),
                         [](const auto& pinfo) {
                           return to_string(pinfo.param);
                         });

TEST(GpuKernels, StagedSlashesGlobalTraffic) {
  const auto input = make_merge_input(Dist::kUniform, 1 << 16, 1 << 16, 31);
  const auto direct = gpu_merge_direct(input.a, input.b);
  const auto staged = gpu_merge_staged(input.a, input.b);
  ASSERT_EQ(direct.output, staged.output);

  // At the default VT = 7 adjacent lanes' cursors are only 28 bytes apart,
  // so a 128B transaction still covers ~4 lanes — the direct kernel is
  // partially coalesced. Staged stays near the 3-coalesced-touches floor.
  EXPECT_GT(direct.transactions_per_element(), 0.5);
  EXPECT_LT(staged.transactions_per_element(), 0.25);
  EXPECT_GT(direct.kernel.totals.global_transactions,
            4 * staged.kernel.totals.global_transactions);
  // The scattered work moved INTO shared memory.
  EXPECT_GT(staged.kernel.totals.shared_accesses,
            direct.kernel.totals.shared_accesses);
}

TEST(GpuKernels, DirectScatterGrowsWithItemsPerThread) {
  // Once VT * 4 bytes >= the 128B transaction size, every lane of a warp
  // sits in its own segment and the direct kernel's coalescing collapses
  // entirely; the staged kernel's traffic is VT-invariant.
  const auto input = make_merge_input(Dist::kUniform, 1 << 15, 1 << 15, 33);
  GpuMergeConfig small_vt, large_vt;
  small_vt.items_per_thread = 4;
  large_vt.items_per_thread = 32;

  const auto direct_small = gpu_merge_direct(input.a, input.b, small_vt);
  const auto direct_large = gpu_merge_direct(input.a, input.b, large_vt);
  const auto staged_small = gpu_merge_staged(input.a, input.b, small_vt);
  const auto staged_large = gpu_merge_staged(input.a, input.b, large_vt);

  EXPECT_GT(direct_large.transactions_per_element(),
            2 * direct_small.transactions_per_element());
  // Fully scattered: ~1 read txn per element-read + 1 write txn/element.
  EXPECT_GT(direct_large.transactions_per_element(), 1.5);
  // Staged traffic stays near the coalesced floor at both VTs (the small
  // drift is the per-tile partition probes: smaller tiles = more tiles).
  EXPECT_LT(staged_small.transactions_per_element(), 0.35);
  EXPECT_LT(staged_large.transactions_per_element(), 0.35);
  EXPECT_NEAR(staged_large.transactions_per_element(),
              staged_small.transactions_per_element(), 0.15);
  // And the gap at large VT is the order of magnitude the GPU Merge Path
  // line of work reports.
  EXPECT_GT(direct_large.kernel.totals.global_transactions,
            10 * staged_large.kernel.totals.global_transactions);
}

TEST(GpuKernels, ModeledTimePrefersStaging) {
  const auto input = make_merge_input(Dist::kClustered, 1 << 15, 1 << 15,
                                      37);
  const auto direct = gpu_merge_direct(input.a, input.b);
  const auto staged = gpu_merge_staged(input.a, input.b);
  EXPECT_LT(staged.kernel.modeled_time, direct.kernel.modeled_time);
}

TEST(GpuMergeSort, SortsCorrectlyAcrossSizes) {
  for (std::size_t n : {0u, 1u, 100u, 4096u, 50000u}) {
    auto data = make_unsorted_values(n, 1400 + n);
    auto expected = data;
    std::sort(expected.begin(), expected.end());
    const auto result = gpu_merge_sort(data);
    EXPECT_EQ(result.output, expected) << "n=" << n;
  }
}

TEST(GpuMergeSort, PhaseAccountingIsSane) {
  const auto data = make_unsorted_values(1 << 16, 1401);
  const auto result = gpu_merge_sort(data);
  EXPECT_TRUE(std::is_sorted(result.output.begin(), result.output.end()));
  // ceil(log2(tiles)) merge rounds for 64Ki / (128*7) = 74 tiles.
  EXPECT_EQ(result.rounds, 7u);
  // Blocksort global traffic: one coalesced load + store per element.
  EXPECT_LT(static_cast<double>(
                result.blocksort.totals.global_transactions),
            0.2 * static_cast<double>(data.size()));
  // Merge rounds stay coalesced: << 1 transaction per element per round.
  EXPECT_LT(result.merge_transactions_per_element(),
            0.25 * static_cast<double>(result.rounds));
  // The bitonic blocksort's compare-exchange traffic lives in shared mem.
  EXPECT_GT(result.blocksort.totals.shared_accesses,
            4 * data.size());
}

TEST(GpuKernels, TileCountMatchesGeometry) {
  GpuMergeConfig config;
  config.simt.cta_threads = 128;
  config.items_per_thread = 8;  // tile = 1024
  const auto input = make_merge_input(Dist::kUniform, 3000, 3000, 41);
  const auto result = gpu_merge_staged(input.a, input.b, config);
  EXPECT_EQ(result.kernel.ctas, (6000 + 1023) / 1024);
}

}  // namespace
}  // namespace mp::simt
