// Tests for src/kernels/sort_network.hpp: the Batcher 8/16 networks are
// proven correct exhaustively via the 0-1 principle, sort_small_auto is
// checked byte-for-byte against std::stable_sort at every length through
// kSortNetworkMax (duplicates, all-ties, reverse, random) and under the
// total-order float comparator on hostile inputs, the instrumented path
// is pinned to the insertion-sort op counts, and the forced-scalar /
// MERGEPATH_SIMD=OFF configurations are shown to keep the network path
// off entirely.

#include "kernels/sort_network.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "core/instrument.hpp"
#include "core/merge_sort.hpp"
#include "util/data_gen.hpp"

namespace mp::kernels {
namespace {

struct KernelGuard {
  Kernel saved = selected_kernel();
  ~KernelGuard() { set_kernel(saved); }
};

std::vector<Kernel> supported_kernels() {
  std::vector<Kernel> out;
  for (Kernel k : kAllKernels)
    if (kernel_supported(k)) out.push_back(k);
  return out;
}

// ---------------------------------------------------------------------------
// The networks themselves, via the 0-1 principle: a comparator network
// sorts every input iff it sorts every 0-1 input, so 2^8 = 256 and
// 2^16 = 65536 patterns are a complete proof, not a sample.

TEST(SortNetwork, Network8SortsAllZeroOnePatterns) {
  for (unsigned pattern = 0; pattern < (1u << 8); ++pattern) {
    std::int32_t d[8];
    for (unsigned i = 0; i < 8; ++i) d[i] = (pattern >> i) & 1u;
    detail::sort_network8(d, std::less<>{});
    EXPECT_TRUE(std::is_sorted(d, d + 8)) << "pattern " << pattern;
  }
}

TEST(SortNetwork, Network16SortsAllZeroOnePatterns) {
  for (unsigned pattern = 0; pattern < (1u << 16); ++pattern) {
    std::int32_t d[16];
    for (unsigned i = 0; i < 16; ++i) d[i] = (pattern >> i) & 1u;
    detail::sort_network16(d, std::less<>{});
    ASSERT_TRUE(std::is_sorted(d, d + 16)) << "pattern " << pattern;
  }
}

// ---------------------------------------------------------------------------
// sort_small_auto equivalence. std::stable_sort is the oracle; for the
// admitted key types equal keys are bitwise identical, so the network's
// instability is unobservable and the comparison can be exact.

template <typename T, typename Comp>
void expect_sorts_like_stable_sort(std::vector<T> data, Comp comp,
                                   Kernel kernel) {
  auto want = data;
  std::stable_sort(want.begin(), want.end(), comp);
  KernelGuard guard;
  ASSERT_TRUE(set_kernel(kernel));
  sort_small_auto(data.data(), data.size(), comp);
  if (data.empty()) return;  // memcmp on a null data() is UB
  ASSERT_EQ(std::memcmp(data.data(), want.data(), data.size() * sizeof(T)),
            0)
      << to_string(kernel) << " n=" << data.size();
}

TEST(SortSmallAuto, AllLengthsThroughMaxAllKernels) {
  std::mt19937 rng(0x50f7);
  for (Kernel kernel : supported_kernels()) {
    for (std::size_t n = 0; n <= kSortNetworkMax; ++n) {
      // Random with duplicates (small value range forces ties), all-ties,
      // reverse-sorted, and already-sorted inputs at every length.
      std::vector<std::int32_t> random(n), ties(n, 42), reverse(n), sorted(n);
      for (std::size_t i = 0; i < n; ++i) {
        random[i] = static_cast<std::int32_t>(rng() % 16) - 8;
        reverse[i] = static_cast<std::int32_t>(n - i);
        sorted[i] = static_cast<std::int32_t>(i / 2);
      }
      expect_sorts_like_stable_sort(random, std::less<>{}, kernel);
      expect_sorts_like_stable_sort(ties, std::less<>{}, kernel);
      expect_sorts_like_stable_sort(reverse, std::less<>{}, kernel);
      expect_sorts_like_stable_sort(sorted, std::less<>{}, kernel);
    }
  }
}

TEST(SortSmallAuto, AllKeyWidths) {
  std::mt19937_64 rng(0x5eed);
  for (Kernel kernel : supported_kernels()) {
    for (std::size_t n : {7u, 8u, 9u, 16u, 24u, 33u, 64u}) {
      std::vector<std::uint32_t> u32(n);
      std::vector<std::int64_t> i64(n);
      std::vector<std::uint64_t> u64(n);
      for (std::size_t i = 0; i < n; ++i) {
        u32[i] = static_cast<std::uint32_t>(rng() % 32);
        i64[i] = static_cast<std::int64_t>(rng() % 64) - 32;
        u64[i] = rng() % 16;
      }
      expect_sorts_like_stable_sort(u32, std::less<>{}, kernel);
      expect_sorts_like_stable_sort(i64, std::less<>{}, kernel);
      expect_sorts_like_stable_sort(u64, std::less<>{}, kernel);
    }
  }
}

TEST(SortSmallAuto, FloatTotalOrderHostileInputs) {
  // Signed zeros, NaNs of both signs and with distinct payloads,
  // denormals, infinities — sorted by TotalOrderLess, compared bitwise
  // against std::stable_sort under the same comparator.
  std::mt19937 rng(0xf1);
  const float specials[] = {
      0.0f,
      -0.0f,
      std::numeric_limits<float>::infinity(),
      -std::numeric_limits<float>::infinity(),
      std::numeric_limits<float>::quiet_NaN(),
      -std::numeric_limits<float>::quiet_NaN(),
      std::bit_cast<float>(0x7fc00001u),
      std::bit_cast<float>(0xffc00001u),
      std::numeric_limits<float>::denorm_min(),
      -std::numeric_limits<float>::denorm_min(),
      1.0f,
      -1.0f,
  };
  for (Kernel kernel : supported_kernels()) {
    for (std::size_t n = 0; n <= kSortNetworkMax; ++n) {
      std::vector<float> data(n);
      for (std::size_t i = 0; i < n; ++i)
        data[i] = specials[rng() % std::size(specials)];
      expect_sorts_like_stable_sort(data, TotalOrderLess{}, kernel);
      std::vector<double> d64(n);
      for (std::size_t i = 0; i < n; ++i)
        d64[i] = static_cast<double>(specials[rng() % std::size(specials)]);
      expect_sorts_like_stable_sort(d64, TotalOrderLess{}, kernel);
    }
  }
}

TEST(SortSmallAuto, NonAdmittedTypesStaySorted) {
  // Custom comparators and float-under-std::less are not admitted to the
  // network (reordering their equal keys would be observable); the
  // fallback must still sort correctly. NaN-free input keeps std::less a
  // valid strict weak order here.
  struct ByHalf {
    bool operator()(int x, int y) const { return x / 2 < y / 2; }
  };
  for (Kernel kernel : supported_kernels()) {
    KernelGuard guard;
    ASSERT_TRUE(set_kernel(kernel));
    std::vector<int> v{9, 3, 8, 2, 7, 1, 6, 0, 5, 4, 3, 9};
    auto want = v;
    std::stable_sort(want.begin(), want.end(), ByHalf{});
    sort_small_auto(v.data(), v.size(), ByHalf{});
    EXPECT_EQ(v, want);

    std::vector<float> f{3.5f, -0.0f, 0.0f, 2.25f, -7.0f, 3.5f};
    auto fwant = f;
    std::stable_sort(fwant.begin(), fwant.end(), std::less<>{});
    sort_small_auto(f.data(), f.size(), std::less<>{});
    EXPECT_EQ(f, fwant);
  }
}

TEST(SortSmallAuto, InstrumentedCallsKeepInsertionSortCounts) {
  // PRAM accounting models the insertion-sort base case; instrumented
  // calls must take it and produce its exact compare/move counts.
  std::mt19937 rng(0xc0);
  std::vector<std::int32_t> data(24);
  for (auto& x : data) x = static_cast<std::int32_t>(rng() % 100);
  auto direct = data;
  OpCounts want_ops;
  detail::insertion_sort_fallback(direct.data(), direct.size(), std::less<>{},
                                  &want_ops);
  KernelGuard guard;
  ASSERT_TRUE(set_kernel(widest_supported()));
  OpCounts ops;
  sort_small_auto(data.data(), data.size(), std::less<>{}, &ops);
  EXPECT_EQ(data, direct);
  EXPECT_EQ(ops.compares, want_ops.compares);
  EXPECT_EQ(ops.moves, want_ops.moves);
}

TEST(SortSmallAuto, ForcedScalarMatchesNetworkBytes) {
  // The network engages only under a vector kernel, but its output must
  // be byte-identical to the scalar base case — the sort's contract does
  // not depend on the dispatch decision.
  std::mt19937 rng(0x11);
  for (std::size_t n : {8u, 16u, 24u, 40u, 64u}) {
    std::vector<std::int32_t> a(n), b;
    for (auto& x : a) x = static_cast<std::int32_t>(rng() % 10);
    b = a;
    KernelGuard guard;
    ASSERT_TRUE(set_kernel(Kernel::kScalar));
    sort_small_auto(a.data(), n);
    ASSERT_TRUE(set_kernel(widest_supported()));
    sort_small_auto(b.data(), n);
    EXPECT_EQ(a, b) << "n=" << n;
  }
}

TEST(SortSmallAuto, SequentialMergeSortInheritsTheBaseCase) {
  // End-to-end: the wired base case produces the same bytes as
  // std::stable_sort through sequential_merge_sort, whichever kernel is
  // selected — including float keys under TotalOrderLess.
  std::mt19937 rng(0xba5e);
  for (Kernel kernel : supported_kernels()) {
    KernelGuard guard;
    ASSERT_TRUE(set_kernel(kernel));
    std::vector<std::int32_t> data(5000);
    for (auto& x : data) x = static_cast<std::int32_t>(rng() % 1000);
    auto want = data;
    std::stable_sort(want.begin(), want.end());
    std::vector<std::int32_t> scratch(data.size());
    sequential_merge_sort(data.data(), scratch.data(), data.size());
    ASSERT_EQ(data, want) << to_string(kernel);

    std::vector<float> fdata(3000);
    for (auto& x : fdata)
      x = std::bit_cast<float>(static_cast<std::uint32_t>(rng()));
    auto fwant = fdata;
    std::stable_sort(fwant.begin(), fwant.end(), TotalOrderLess{});
    std::vector<float> fscratch(fdata.size());
    sequential_merge_sort(fdata.data(), fscratch.data(), fdata.size(),
                          TotalOrderLess{});
    ASSERT_EQ(std::memcmp(fdata.data(), fwant.data(),
                          fdata.size() * sizeof(float)),
              0)
        << to_string(kernel);
  }
}

}  // namespace
}  // namespace mp::kernels
