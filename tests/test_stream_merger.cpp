// Tests for core/stream_merger.hpp: the determinedness rule, incremental
// pulls, close semantics, tie stability across pulls, and randomized
// chunk-schedule equivalence against the offline merge.

#include "core/stream_merger.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_support.hpp"
#include "util/data_gen.hpp"
#include "util/rng.hpp"

namespace mp {
namespace {

TEST(StreamMerger, NothingDeterminedWhileABufferIsDryAndOpen) {
  StreamMerger<std::int32_t> merger;
  const std::vector<std::int32_t> chunk{1, 2, 3};
  merger.push_a(std::span<const std::int32_t>(chunk));
  // B has no data yet and is open: a future B value could precede 1.
  EXPECT_EQ(merger.available(), 0u);
  merger.close_b();
  // Now all of A is determined.
  EXPECT_EQ(merger.available(), 3u);
  EXPECT_EQ(merger.pull_all(), chunk);
  merger.close_a();
  EXPECT_TRUE(merger.finished());
}

TEST(StreamMerger, DeterminedPrefixStopsAtOpenFrontier) {
  StreamMerger<std::int32_t> merger;
  const std::vector<std::int32_t> a{1, 5, 9};
  const std::vector<std::int32_t> b{2, 3};
  merger.push_a(std::span<const std::int32_t>(a));
  merger.push_b(std::span<const std::int32_t>(b));
  // Path on the windows: 1,2,3 then B exhausts while open => 3 determined.
  EXPECT_EQ(merger.available(), 3u);
  const auto got = merger.pull_all();
  EXPECT_EQ(got, (std::vector<std::int32_t>{1, 2, 3}));
  // 5 is not determined: a future B value 4 could precede it.
  EXPECT_EQ(merger.available(), 0u);
  const std::vector<std::int32_t> b2{4, 20};
  merger.push_b(std::span<const std::int32_t>(b2));
  // Now A's buffered 5, 9 precede B's 20, but 20 itself waits for A.
  EXPECT_EQ(merger.available(), 3u);
  EXPECT_EQ(merger.pull_all(), (std::vector<std::int32_t>{4, 5, 9}));
  merger.close_a();
  EXPECT_EQ(merger.pull_all(), (std::vector<std::int32_t>{20}));
  merger.close_b();
  EXPECT_TRUE(merger.finished());
}

TEST(StreamMerger, EqualKeysAreDeterminedImmediately) {
  // a == b at the heads: taking A is final (stable order) even though
  // more elements equal to it may arrive on either stream.
  StreamMerger<std::int32_t> merger;
  const std::vector<std::int32_t> a{7}, b{7};
  merger.push_a(std::span<const std::int32_t>(a));
  merger.push_b(std::span<const std::int32_t>(b));
  // A's 7 <= B's 7: determined. B's 7 then stalls on A's open frontier
  // (a future A 7 would stably precede it? No — future A elements come
  // AFTER a[0] in A's own order, and A-priority only orders A's elements
  // before B's at equal keys when they are present; B's 7 must wait until
  // it is known no smaller-or-equal A arrives: a future 7 on A would
  // stably precede B's 7).
  EXPECT_EQ(merger.available(), 1u);
  std::vector<std::int32_t> out(1);
  EXPECT_EQ(merger.pull(std::span<std::int32_t>(out)), 1u);
  EXPECT_EQ(out[0], 7);
  merger.close_a();
  EXPECT_EQ(merger.pull_all(), (std::vector<std::int32_t>{7}));
}

TEST(StreamMerger, PartialPullsRespectCapacity) {
  StreamMerger<std::int32_t> merger;
  const auto input = make_merge_input(Dist::kUniform, 1000, 1000, 401);
  merger.push_a(std::span<const std::int32_t>(input.a));
  merger.push_b(std::span<const std::int32_t>(input.b));
  merger.close_a();
  merger.close_b();
  const auto expected = test::reference_merge(input.a, input.b);

  std::vector<std::int32_t> got;
  std::vector<std::int32_t> buf(137);  // odd capacity: exercises resume
  while (!merger.finished()) {
    const std::size_t n = merger.pull(std::span<std::int32_t>(buf));
    got.insert(got.end(), buf.begin(),
               buf.begin() + static_cast<std::ptrdiff_t>(n));
    ASSERT_GT(n, 0u);
  }
  EXPECT_EQ(got, expected);
}

TEST(StreamMerger, RandomChunkScheduleMatchesOfflineMerge) {
  // Property: any interleaving of pushes/pulls/closes yields exactly the
  // offline stable merge.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto input = make_merge_input(Dist::kClustered, 3000, 2500,
                                        500 + seed);
    const auto expected = test::reference_merge(input.a, input.b);
    Xoshiro256 rng(seed);
    StreamMerger<std::int32_t> merger;
    std::size_t fed_a = 0, fed_b = 0;
    std::vector<std::int32_t> got;
    std::vector<std::int32_t> buf(512);

    while (!merger.finished()) {
      switch (rng.bounded(4)) {
        case 0: {  // feed A
          if (fed_a < input.a.size()) {
            const std::size_t len = std::min<std::size_t>(
                1 + rng.bounded(400), input.a.size() - fed_a);
            merger.push_a(std::span<const std::int32_t>(
                input.a.data() + fed_a, len));
            fed_a += len;
          } else if (merger.a_open()) {
            merger.close_a();
          }
          break;
        }
        case 1: {  // feed B
          if (fed_b < input.b.size()) {
            const std::size_t len = std::min<std::size_t>(
                1 + rng.bounded(400), input.b.size() - fed_b);
            merger.push_b(std::span<const std::int32_t>(
                input.b.data() + fed_b, len));
            fed_b += len;
          } else if (merger.b_open()) {
            merger.close_b();
          }
          break;
        }
        default: {  // pull
          const std::size_t n = merger.pull(std::span<std::int32_t>(buf));
          got.insert(got.end(), buf.begin(),
                     buf.begin() + static_cast<std::ptrdiff_t>(n));
          break;
        }
      }
    }
    EXPECT_EQ(got, expected) << "seed " << seed;
  }
}

TEST(StreamMerger, StabilityAcrossManySmallPulls) {
  const auto keyed = make_keyed_input(800, 800, 4, 601);
  StreamMerger<KeyedRecord> merger;
  merger.push_a(std::span<const KeyedRecord>(keyed.a));
  merger.push_b(std::span<const KeyedRecord>(keyed.b));
  merger.close_a();
  merger.close_b();
  std::vector<KeyedRecord> got;
  std::vector<KeyedRecord> buf(33);
  while (!merger.finished()) {
    const std::size_t n = merger.pull(std::span<KeyedRecord>(buf));
    got.insert(got.end(), buf.begin(),
               buf.begin() + static_cast<std::ptrdiff_t>(n));
  }
  for (std::size_t i = 1; i < got.size(); ++i) {
    ASSERT_LE(got[i - 1].key, got[i].key);
    if (got[i - 1].key == got[i].key) {
      ASSERT_LT(got[i - 1].payload, got[i].payload) << "at " << i;
    }
  }
}

TEST(StreamMerger, LargePullUsesParallelPath) {
  // Above the parallel threshold (1 << 15): exercises the Algorithm 1
  // branch inside pull().
  const auto input = make_merge_input(Dist::kUniform, 50000, 50000, 701);
  StreamMerger<std::int32_t> merger({}, Executor{nullptr, 4});
  merger.push_a(std::span<const std::int32_t>(input.a));
  merger.push_b(std::span<const std::int32_t>(input.b));
  merger.close_a();
  merger.close_b();
  EXPECT_EQ(merger.pull_all(), test::reference_merge(input.a, input.b));
}

}  // namespace
}  // namespace mp
