#pragma once
/// \file test_support.hpp
/// Shared helpers for the test suite.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "util/data_gen.hpp"

namespace mp::test {

/// Reference merged output: stable std::merge of the two inputs.
inline std::vector<std::int32_t> reference_merge(
    const std::vector<std::int32_t>& a, const std::vector<std::int32_t>& b) {
  std::vector<std::int32_t> out(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), out.begin());
  return out;
}

/// Readable test-parameter name for a distribution.
inline std::string dist_name(Dist dist) { return to_string(dist); }

}  // namespace mp::test
