// Tests for the fork-join engine (ThreadPool / Executor): lane coverage,
// work sharing, exception capture, serial-pool determinism, and reuse
// across many small jobs (the pattern the algorithm tests hammer) — plus
// the fault-tolerant surface: try_parallel_for_lanes outcome reporting,
// injected lane faults, straggler hedging, and the guarantee that a
// throwing/abandoned lane can never wedge the barrier (run under TSan in
// CI).

#include "util/threading.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "util/tasksched.hpp"

namespace mp {
namespace {

TEST(ThreadPool, RunsEveryLaneExactlyOnce) {
  ThreadPool pool(3);
  for (unsigned lanes : {1u, 2u, 4u, 16u, 100u}) {
    std::vector<std::atomic<int>> hits(lanes);
    pool.parallel_for_lanes(lanes, [&](unsigned lane) {
      hits[lane].fetch_add(1, std::memory_order_relaxed);
    });
    for (unsigned lane = 0; lane < lanes; ++lane)
      EXPECT_EQ(hits[lane].load(), 1) << "lanes=" << lanes << " lane=" << lane;
  }
}

TEST(ThreadPool, ZeroLanesIsANoop) {
  ThreadPool pool(2);
  pool.parallel_for_lanes(0, [](unsigned) { FAIL() << "must not run"; });
}

TEST(ThreadPool, SerialPoolRunsLanesInOrder) {
  ThreadPool pool(0);
  std::vector<unsigned> order;
  pool.parallel_for_lanes(8, [&](unsigned lane) { order.push_back(lane); });
  std::vector<unsigned> expected(8);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for_lanes(
                   8,
                   [&](unsigned lane) {
                     if (lane == 5) throw std::runtime_error("lane 5");
                   }),
               std::runtime_error);
  // Pool must be reusable after a throwing job.
  std::atomic<int> sum{0};
  pool.parallel_for_lanes(8, [&](unsigned lane) {
    sum.fetch_add(static_cast<int>(lane));
  });
  EXPECT_EQ(sum.load(), 28);
}

TEST(ThreadPool, ManySmallJobsReuseWorkers) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int job = 0; job < 2000; ++job) {
    pool.parallel_for_lanes(5, [&](unsigned lane) {
      total.fetch_add(lane + 1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 2000L * 15);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(7);
  std::vector<int> data(100000);
  std::iota(data.begin(), data.end(), 0);
  const unsigned lanes = 8;
  std::vector<long> partial(lanes, 0);
  pool.parallel_for_lanes(lanes, [&](unsigned lane) {
    const std::size_t begin = lane * data.size() / lanes;
    const std::size_t end = (lane + 1ull) * data.size() / lanes;
    long s = 0;
    for (std::size_t i = begin; i < end; ++i) s += data[i];
    partial[lane] = s;
  });
  const long total = std::accumulate(partial.begin(), partial.end(), 0L);
  EXPECT_EQ(total, 100000L * 99999 / 2);
}

TEST(ThreadPoolTry, CleanJobReportsAllOk) {
  ThreadPool pool(3);
  for (unsigned lanes : {1u, 4u, 32u}) {
    std::vector<std::atomic<int>> hits(lanes);
    const LaneReport report = pool.try_parallel_for_lanes(
        lanes, [&](unsigned lane) { hits[lane].fetch_add(1); });
    EXPECT_TRUE(report.all_ok());
    EXPECT_EQ(report.lanes.size(), lanes);
    EXPECT_EQ(report.failures, 0u);
    EXPECT_EQ(report.injected_faults, 0u);
    EXPECT_EQ(report.first_error(), nullptr);
    for (unsigned lane = 0; lane < lanes; ++lane) {
      EXPECT_EQ(hits[lane].load(), 1) << "lane " << lane;
      EXPECT_EQ(report.lanes[lane].status, LaneStatus::kOk);
    }
  }
}

TEST(ThreadPoolTry, GenuineThrowIsDataNotControlFlow) {
  ThreadPool pool(3);
  const LaneReport report = pool.try_parallel_for_lanes(8, [](unsigned lane) {
    if (lane % 3 == 1) throw std::runtime_error("lane down");
  });
  EXPECT_FALSE(report.all_ok());
  EXPECT_EQ(report.failures, 3u);  // lanes 1, 4, 7
  EXPECT_EQ(report.injected_faults, 0u);
  for (unsigned lane = 0; lane < 8; ++lane) {
    const LaneOutcome& o = report.lanes[lane];
    if (lane % 3 == 1) {
      EXPECT_EQ(o.status, LaneStatus::kThrew) << "lane " << lane;
      EXPECT_EQ(o.injected, fault::FaultKind::kNone);
      EXPECT_NE(o.error, nullptr);
    } else {
      EXPECT_EQ(o.status, LaneStatus::kOk) << "lane " << lane;
    }
  }
  EXPECT_THROW(std::rethrow_exception(report.first_error()),
               std::runtime_error);
}

// The no-deadlock guarantee, hammered: every lane of every job throws, the
// barrier must complete every time and the pool must stay reusable. This
// is the test the CI TSan job leans on.
TEST(ThreadPoolTry, ThrowingLanesNeverDeadlockAcrossReuse) {
  ThreadPool pool(3);
  for (int job = 0; job < 200; ++job) {
    const LaneReport report = pool.try_parallel_for_lanes(
        6, [](unsigned) -> void { throw std::runtime_error("total loss"); });
    ASSERT_EQ(report.failures, 6u) << "job " << job;
  }
  std::atomic<int> sum{0};
  pool.parallel_for_lanes(8,
                          [&](unsigned lane) { sum += static_cast<int>(lane); });
  EXPECT_EQ(sum.load(), 28);
}

TEST(ThreadPoolTry, SerialPoolCapturesOutcomesInline) {
  ThreadPool pool(0);
  const LaneReport report = pool.try_parallel_for_lanes(4, [](unsigned lane) {
    if (lane == 2) throw std::runtime_error("inline lane");
  });
  EXPECT_EQ(report.failures, 1u);
  EXPECT_EQ(report.lanes[2].status, LaneStatus::kThrew);
  EXPECT_EQ(report.lanes[3].status, LaneStatus::kOk);  // barrier went on
}

TEST(ThreadPoolTry, InjectedThrowAndAbandonAreTypedOutcomes) {
  if (!fault::kFaultCompiledIn) GTEST_SKIP() << "MP_FAULT=0 build";
  ThreadPool pool(3);
  fault::FaultPlan plan;
  plan.fail_op(0, fault::FaultKind::kLaneThrow);    // lane 0's decision
  plan.fail_op(1, fault::FaultKind::kLaneAbandon);  // lane 1's decision
  fault::ScopedInjector injector(pool, plan);
  std::vector<std::atomic<int>> hits(4);
  const LaneReport report = pool.try_parallel_for_lanes(
      4, [&](unsigned lane) { hits[lane].fetch_add(1); });
  EXPECT_EQ(report.failures, 2u);
  EXPECT_EQ(report.injected_faults, 2u);
  EXPECT_EQ(report.lanes[0].status, LaneStatus::kThrew);
  EXPECT_EQ(report.lanes[0].injected, fault::FaultKind::kLaneThrow);
  EXPECT_EQ(report.lanes[1].status, LaneStatus::kAbandoned);
  EXPECT_EQ(report.lanes[1].injected, fault::FaultKind::kLaneAbandon);
  // Faulted lanes fire *before* the task: neither ever ran.
  EXPECT_EQ(hits[0].load(), 0);
  EXPECT_EQ(hits[1].load(), 0);
  EXPECT_EQ(hits[2].load(), 1);
  EXPECT_EQ(hits[3].load(), 1);
  try {
    std::rethrow_exception(report.first_error());
    FAIL() << "expected a LaneFault";
  } catch (const fault::LaneFault& error) {
    EXPECT_EQ(error.kind(), fault::FaultKind::kLaneThrow);
    EXPECT_EQ(error.lane(), 0u);
  }
}

TEST(ThreadPoolTry, ParallelForLanesRethrowsInjectedFault) {
  if (!fault::kFaultCompiledIn) GTEST_SKIP() << "MP_FAULT=0 build";
  ThreadPool pool(2);
  fault::FaultPlan plan;
  plan.fail_op(3, fault::FaultKind::kLaneThrow);
  fault::ScopedInjector injector(pool, plan);
  // The plain entry point routes through the tolerant path when a plan is
  // attached, so the injected fault surfaces as a typed exception...
  EXPECT_THROW(pool.parallel_for_lanes(6, [](unsigned) {}), fault::LaneFault);
  // ...and the pool is immediately reusable (barrier completed).
  std::atomic<int> ran{0};
  pool.parallel_for_lanes(6, [&](unsigned) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 6);
}

TEST(ThreadPoolTry, HedgeCompletesADelayedLane) {
  if (!fault::kFaultCompiledIn) GTEST_SKIP() << "MP_FAULT=0 build";
  ThreadPool pool(3);
  HedgePolicy hedge;
  hedge.enabled = true;
  hedge.factor = 1.0;
  hedge.min_lane_us = 50.0;
  hedge.check_interval_us = 200.0;
  // Two lanes: the caller grabs lane 0 (a real 5 ms task, so the completed
  // median is meaningful) and a worker picks up lane 1, whose injected
  // 100 ms stall is cancellable. The caller reaches the barrier, sees the
  // straggler past factor x median, claims its ticket and runs it — the
  // sleeping worker wakes, finds the ticket gone, and walks away. If the
  // claim race goes the other way (caller draws the stall; a lane cannot
  // hedge itself) that attempt just sleeps it off — so retry a few times.
  bool hedged = false;
  for (int attempt = 0; attempt < 8 && !hedged; ++attempt) {
    fault::FaultConfig config;
    config.lane_delay_us = 100000.0;
    fault::FaultPlan plan(config);
    plan.fail_op(1, fault::FaultKind::kLaneDelay);  // lane 1's decision
    fault::ScopedInjector injector(pool, plan);
    std::vector<std::atomic<int>> hits(2);
    const LaneReport report = pool.try_parallel_for_lanes(
        2,
        [&](unsigned lane) {
          if (lane == 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
          hits[lane].fetch_add(1);
        },
        hedge);
    ASSERT_TRUE(report.all_ok()) << "attempt " << attempt;
    ASSERT_EQ(hits[0].load(), 1);
    ASSERT_EQ(hits[1].load(), 1);  // exactly once, ticket or not
    hedged = report.hedges > 0;
    if (hedged) {
      EXPECT_TRUE(report.lanes[1].hedged);
    }
  }
  EXPECT_TRUE(hedged) << "no attempt hedged the stalled lane";
}

TEST(ThreadPoolTry, HedgerThreadRescuesTheCallersOwnStalledLane) {
  if (!fault::kFaultCompiledIn) GTEST_SKIP() << "MP_FAULT=0 build";
  // 0 workers: every lane runs inline on the caller, so when lane 0 draws
  // the injected stall there is no other lane thread that could ever hedge
  // it — only the dedicated hedger thread can. And it is deterministic (no
  // claim race to retry): the caller is asleep in the cancellable delay
  // while the hedger — with no completed-lane median yet, falling back to
  // the min_lane_us threshold — claims the ticket, runs the task, and
  // cancels the nap.
  ThreadPool pool(0);
  HedgePolicy hedge;
  hedge.enabled = true;
  hedge.min_lane_us = 500.0;
  hedge.check_interval_us = 200.0;
  fault::FaultConfig config;
  config.lane_delay_us = 5e6;  // 5 s: a failed hedge is a visible stall
  fault::FaultPlan plan(config);
  plan.fail_op(0, fault::FaultKind::kLaneDelay);  // the caller's own lane
  fault::ScopedInjector injector(pool, plan);
  std::vector<std::atomic<int>> hits(2);
  const auto t0 = std::chrono::steady_clock::now();
  const LaneReport report = pool.try_parallel_for_lanes(
      2, [&](unsigned lane) { hits[lane].fetch_add(1); }, hedge);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_TRUE(report.all_ok());
  EXPECT_EQ(report.hedges, 1u);
  EXPECT_TRUE(report.lanes[0].hedged);
  EXPECT_EQ(hits[0].load(), 1);  // exactly once, on the hedger thread
  EXPECT_EQ(hits[1].load(), 1);
  // The barrier must not have waited out the injected 5 s nap.
  EXPECT_LT(elapsed_ms, 2500.0);
}

TEST(Executor, DefaultsResolveToSharedPool) {
  Executor exec{};
  EXPECT_GE(exec.resolve_threads(), 1u);
  EXPECT_EQ(&exec.resolve_pool(), &ThreadPool::shared());
}

TEST(Executor, ExplicitThreadCountWins) {
  ThreadPool pool(2);
  Executor exec{&pool, 9};
  EXPECT_EQ(exec.resolve_threads(), 9u);
  EXPECT_EQ(&exec.resolve_pool(), &pool);
}

TEST(Executor, ZeroThreadsMeansPoolWidth) {
  ThreadPool pool(3);
  Executor exec{&pool, 0};
  EXPECT_EQ(exec.resolve_threads(), 4u);  // workers + caller
}

// ---- TaskScheduler basics (full stress in tests/property/) ----------------

TEST(TaskSchedulerBasics, RunExecutesRootAndParDoRunsBothHalves) {
  TaskScheduler sched(2);
  EXPECT_EQ(sched.workers(), 2u);
  EXPECT_EQ(sched.slots(), 2u + TaskScheduler::kExternalSlots);
  int f = 0, g = 0;
  sched.run([&] {
    EXPECT_TRUE(TaskScheduler::in_task());
    EXPECT_LT(TaskScheduler::current_slot(), sched.slots());
    TaskScheduler::par_do([&] { f = 1; }, [&] { g = 1; });
  });
  EXPECT_FALSE(TaskScheduler::in_task());
  EXPECT_EQ(f, 1);
  EXPECT_EQ(g, 1);
}

TEST(TaskSchedulerBasics, NegativeWorkerCountSizesToHost) {
  TaskScheduler sched;  // -1: hardware_concurrency() - 1, floor 0
  EXPECT_GE(sched.workers() + 1, 1u);
  std::atomic<int> ran{0};
  sched.run([&] {
    TaskScheduler::par_do([&] { ran.fetch_add(1); },
                          [&] { ran.fetch_add(1); });
  });
  EXPECT_EQ(ran.load(), 2);
}

TEST(TaskSchedulerBasics, RootExceptionPropagatesAndPoolSurvives) {
  TaskScheduler sched(1);
  EXPECT_THROW(sched.run([] { throw std::runtime_error("boom"); }),
               std::runtime_error);
  int ok = 0;
  sched.run([&] { ok = 1; });
  EXPECT_EQ(ok, 1);
}

TEST(TaskSchedulerBasics, StatsCountSpawnsAndReset) {
  TaskScheduler sched(2);
  sched.reset_stats();
  std::atomic<int> leaves{0};
  sched.run([&] {
    TaskScheduler::par_do(
        [&] {
          TaskScheduler::par_do([&] { leaves.fetch_add(1); },
                                [&] { leaves.fetch_add(1); });
        },
        [&] { leaves.fetch_add(1); });
  });
  EXPECT_EQ(leaves.load(), 3);
  const auto st = sched.stats();
  EXPECT_EQ(st.spawns, 2u);
  EXPECT_GE(st.max_depth, 2u);
  sched.reset_stats();
  EXPECT_EQ(sched.stats().spawns, 0u);
}

TEST(TaskSchedulerBasics, SharedSchedulerIsAProcessSingleton) {
  TaskScheduler& a = TaskScheduler::shared();
  TaskScheduler& b = TaskScheduler::shared();
  EXPECT_EQ(&a, &b);
  int ran = 0;
  a.run([&] { ran = 1; });
  EXPECT_EQ(ran, 1);
}

}  // namespace
}  // namespace mp
