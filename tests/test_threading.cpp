// Tests for the fork-join engine (ThreadPool / Executor): lane coverage,
// work sharing, exception capture, serial-pool determinism, and reuse
// across many small jobs (the pattern the algorithm tests hammer).

#include "util/threading.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace mp {
namespace {

TEST(ThreadPool, RunsEveryLaneExactlyOnce) {
  ThreadPool pool(3);
  for (unsigned lanes : {1u, 2u, 4u, 16u, 100u}) {
    std::vector<std::atomic<int>> hits(lanes);
    pool.parallel_for_lanes(lanes, [&](unsigned lane) {
      hits[lane].fetch_add(1, std::memory_order_relaxed);
    });
    for (unsigned lane = 0; lane < lanes; ++lane)
      EXPECT_EQ(hits[lane].load(), 1) << "lanes=" << lanes << " lane=" << lane;
  }
}

TEST(ThreadPool, ZeroLanesIsANoop) {
  ThreadPool pool(2);
  pool.parallel_for_lanes(0, [](unsigned) { FAIL() << "must not run"; });
}

TEST(ThreadPool, SerialPoolRunsLanesInOrder) {
  ThreadPool pool(0);
  std::vector<unsigned> order;
  pool.parallel_for_lanes(8, [&](unsigned lane) { order.push_back(lane); });
  std::vector<unsigned> expected(8);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for_lanes(
                   8,
                   [&](unsigned lane) {
                     if (lane == 5) throw std::runtime_error("lane 5");
                   }),
               std::runtime_error);
  // Pool must be reusable after a throwing job.
  std::atomic<int> sum{0};
  pool.parallel_for_lanes(8, [&](unsigned lane) {
    sum.fetch_add(static_cast<int>(lane));
  });
  EXPECT_EQ(sum.load(), 28);
}

TEST(ThreadPool, ManySmallJobsReuseWorkers) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int job = 0; job < 2000; ++job) {
    pool.parallel_for_lanes(5, [&](unsigned lane) {
      total.fetch_add(lane + 1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 2000L * 15);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(7);
  std::vector<int> data(100000);
  std::iota(data.begin(), data.end(), 0);
  const unsigned lanes = 8;
  std::vector<long> partial(lanes, 0);
  pool.parallel_for_lanes(lanes, [&](unsigned lane) {
    const std::size_t begin = lane * data.size() / lanes;
    const std::size_t end = (lane + 1ull) * data.size() / lanes;
    long s = 0;
    for (std::size_t i = begin; i < end; ++i) s += data[i];
    partial[lane] = s;
  });
  const long total = std::accumulate(partial.begin(), partial.end(), 0L);
  EXPECT_EQ(total, 100000L * 99999 / 2);
}

TEST(Executor, DefaultsResolveToSharedPool) {
  Executor exec{};
  EXPECT_GE(exec.resolve_threads(), 1u);
  EXPECT_EQ(&exec.resolve_pool(), &ThreadPool::shared());
}

TEST(Executor, ExplicitThreadCountWins) {
  ThreadPool pool(2);
  Executor exec{&pool, 9};
  EXPECT_EQ(exec.resolve_threads(), 9u);
  EXPECT_EQ(&exec.resolve_pool(), &pool);
}

TEST(Executor, ZeroThreadsMeansPoolWidth) {
  ThreadPool pool(3);
  Executor exec{&pool, 0};
  EXPECT_EQ(exec.resolve_threads(), 4u);  // workers + caller
}

}  // namespace
}  // namespace mp
