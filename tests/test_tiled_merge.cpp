// Tests for core/tiled_merge.hpp: the hinted (galloping) diagonal search
// against the plain one on every diagonal/hint combination, and the
// dynamically scheduled tiled merge against the reference.

#include "core/tiled_merge.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "test_support.hpp"
#include "util/data_gen.hpp"
#include "util/rng.hpp"

namespace mp {
namespace {

TEST(HintedDiagonalSearch, AgreesWithPlainSearchForAllHints) {
  for (Dist dist : kAllDists) {
    const auto input = make_merge_input(dist, 60, 45, 801);
    const std::size_t m = input.a.size(), n = input.b.size();
    for (std::size_t diag = 0; diag <= m + n; ++diag) {
      const std::size_t expected =
          diagonal_intersection(input.a.data(), m, input.b.data(), n, diag);
      for (std::size_t hint = 0; hint <= m; hint += 3) {
        EXPECT_EQ(diagonal_intersection_hinted(input.a.data(), m,
                                               input.b.data(), n, diag, hint),
                  expected)
            << to_string(dist) << " diag=" << diag << " hint=" << hint;
      }
      // Exact hint and off-by-one hints (the common case in tiled runs).
      for (std::ptrdiff_t delta : {-1, 0, 1}) {
        const std::ptrdiff_t h = static_cast<std::ptrdiff_t>(expected) + delta;
        if (h < 0) continue;
        EXPECT_EQ(diagonal_intersection_hinted(
                      input.a.data(), m, input.b.data(), n, diag,
                      static_cast<std::size_t>(h)),
                  expected);
      }
    }
  }
}

TEST(HintedDiagonalSearch, GoodHintsCostFewerProbes) {
  const auto input = make_merge_input(Dist::kUniform, 1 << 20, 1 << 20, 803);
  const std::size_t m = input.a.size(), n = input.b.size();
  const std::size_t diag = m;  // middle diagonal
  const std::size_t exact =
      diagonal_intersection(input.a.data(), m, input.b.data(), n, diag);

  OpCounts cold, warm;
  diagonal_intersection(input.a.data(), m, input.b.data(), n, diag,
                        std::less<>{}, &cold);
  diagonal_intersection_hinted(input.a.data(), m, input.b.data(), n, diag,
                               exact > 8 ? exact - 8 : 0, std::less<>{},
                               &warm);
  EXPECT_GT(cold.search_steps, 15u);   // ~log2(1M)
  EXPECT_LT(warm.search_steps, 12u);   // ~log2(8) + bracket probes
}

class TiledMergeParam
    : public ::testing::TestWithParam<std::tuple<Dist, std::size_t, unsigned>> {
};

TEST_P(TiledMergeParam, MatchesReference) {
  const auto [dist, tile, threads] = GetParam();
  const auto input = make_merge_input(dist, 1500, 1200, 807);
  std::vector<std::int32_t> out(2700);
  tiled_parallel_merge(input.a.data(), 1500, input.b.data(), 1200,
                       out.data(), tile, Executor{nullptr, threads});
  EXPECT_EQ(out, test::reference_merge(input.a, input.b));
}

INSTANTIATE_TEST_SUITE_P(
    DistsTilesThreads, TiledMergeParam,
    ::testing::Combine(::testing::ValuesIn(kAllDists),
                       ::testing::Values(std::size_t{1}, std::size_t{64},
                                         std::size_t{997},
                                         std::size_t{10000}),
                       ::testing::Values(1u, 4u, 8u)),
    [](const auto& pinfo) {
      return to_string(std::get<0>(pinfo.param)) + "_t" +
             std::to_string(std::get<1>(pinfo.param)) + "_p" +
             std::to_string(std::get<2>(pinfo.param));
    });

TEST(TiledMerge, StableOnHeavyDuplicates) {
  const auto input = make_keyed_input(2000, 2000, 6, 809);
  std::vector<KeyedRecord> out(4000);
  tiled_parallel_merge(input.a.data(), 2000, input.b.data(), 2000,
                       out.data(), 64, Executor{nullptr, 8});
  for (std::size_t i = 1; i < out.size(); ++i) {
    ASSERT_LE(out[i - 1].key, out[i].key);
    if (out[i - 1].key == out[i].key) {
      ASSERT_LT(out[i - 1].payload, out[i].payload) << "at " << i;
    }
  }
}

TEST(TiledMerge, SkewedComparatorCostStillCorrect) {
  // Comparator with artificial cost skew (expensive on one value range):
  // dynamic tiles exist for exactly this; verify correctness is unaffected.
  const auto input = make_merge_input(Dist::kUniform, 20000, 20000, 811);
  std::vector<std::int32_t> out(40000);
  std::atomic<std::uint64_t> spin_sink{0};
  auto skewed = [&](std::int32_t x, std::int32_t y) {
    if ((x & 0xff) == 0) {
      std::uint64_t s = 0;
      for (int k = 0; k < 50; ++k) s += static_cast<std::uint64_t>(k) * x;
      spin_sink.fetch_add(s, std::memory_order_relaxed);
    }
    return x < y;
  };
  tiled_parallel_merge(input.a.data(), 20000, input.b.data(), 20000,
                       out.data(), 512, Executor{nullptr, 4}, skewed);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  EXPECT_EQ(out.size(), 40000u);
}

TEST(TiledMerge, EmptyAndTinyInputs) {
  std::vector<std::int32_t> empty, out;
  tiled_parallel_merge(empty.data(), 0, empty.data(), 0, out.data(), 16);
  const std::vector<std::int32_t> a{1};
  out.resize(1);
  tiled_parallel_merge(a.data(), 1, empty.data(), 0, out.data(), 16,
                       Executor{nullptr, 8});
  EXPECT_EQ(out[0], 1);
}

}  // namespace
}  // namespace mp
