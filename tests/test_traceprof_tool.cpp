// End-to-end tests of the traceprof offline analyzer: a real trace is
// generated in-process by the recursive scheduler, exported in Chrome
// format, and digested through the actual binary. Complements the CI
// smoke step, which runs traceprof against ablation_scheduler's trace.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/recursive_merge.hpp"
#include "obs/trace.hpp"

namespace {

using namespace mp;

std::string tool_path() {
  return std::string(TRACEPROF_BINARY);
}

std::string temp_file(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  out << contents;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Runs the tool with stdout captured to a file (the reports under test
// are printed there); stderr is discarded like the other tool tests.
int run(const std::string& args, const std::string& stdout_path) {
  const std::string cmd =
      tool_path() + " " + args + " > " + stdout_path + " 2>/dev/null";
  const int status = std::system(cmd.c_str());
  return WEXITSTATUS(status);
}

// Generates a scheduler-heavy trace: recursive_merge_sort called outside
// a task roots sched.run and fans out sched.task spans with spawn/steal
// instants — exactly the shape traceprof's per-worker breakdown needs.
// Returns "" when the libraries were built with MP_TRACE=0 (callers
// skip; the empty-trace behaviour has its own test).
std::string make_sched_trace(const std::string& name) {
  obs::reset_tracing();
  obs::arm_tracing();
  if (!obs::tracing_armed()) {
    obs::disarm_tracing();
    return "";
  }
  std::vector<int> data(1 << 14);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<int>(data.size() - i);
  recursive_merge_sort(data.data(), data.size());
  obs::disarm_tracing();
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));

  const auto path = temp_file(name);
  std::ofstream out(path);
  obs::write_chrome_trace(out);
  obs::reset_tracing();
  return path;
}

TEST(TraceprofTool, PrintsCriticalPathAndWorkerBreakdown) {
  const auto trace = make_sched_trace("tp_sched.json");
  if (trace.empty()) GTEST_SKIP() << "tracing compiled out";
  const auto report = temp_file("tp_report.txt");
  ASSERT_EQ(run(trace + " --top 5", report), 0);
  const std::string text = read_file(report);
  EXPECT_NE(text.find("critical path:"), std::string::npos) << text;
  EXPECT_NE(text.find("per-worker breakdown"), std::string::npos) << text;
  // The recursive sort's own spans must show up as attribution targets.
  EXPECT_NE(text.find("sort"), std::string::npos) << text;
}

TEST(TraceprofTool, JsonReportCarriesScheduleAndWorkerCounters) {
  const auto trace = make_sched_trace("tp_sched2.json");
  if (trace.empty()) GTEST_SKIP() << "tracing compiled out";
  const auto report = temp_file("tp_stdout2.txt");
  const auto json = temp_file("tp_prof.json");
  ASSERT_EQ(run(trace + " --json " + json, report), 0);
  const std::string text = read_file(json);
  EXPECT_NE(text.find("\"schema\":\"mergepath-traceprof-v1\""),
            std::string::npos);
  EXPECT_NE(text.find("\"critical_path\":{\"total_ns\":"), std::string::npos);
  EXPECT_NE(text.find("\"workers\":["), std::string::npos);
  EXPECT_NE(text.find("\"busy_ns\":"), std::string::npos);
  EXPECT_NE(text.find("\"tasks\":"), std::string::npos);
  EXPECT_NE(text.find("\"steals\":"), std::string::npos);
  // A real scheduler run is never empty.
  EXPECT_EQ(text.find("\"spans\":0,"), std::string::npos);
  EXPECT_EQ(text.find("\"wall_ns\":0,"), std::string::npos);
}

TEST(TraceprofTool, EmptyTraceIsAnalyzedNotRejected) {
  // An MP_TRACE=0 build still writes a syntactically valid empty trace;
  // traceprof must degrade to a summary line, not an error.
  const auto trace = temp_file("tp_empty.json");
  const auto report = temp_file("tp_empty_out.txt");
  write_file(trace, "{\"traceEvents\":[]}\n");
  ASSERT_EQ(run(trace, report), 0);
  EXPECT_NE(read_file(report).find("empty trace"), std::string::npos);
}

TEST(TraceprofTool, UsageAndInputErrorExitCodes) {
  const auto report = temp_file("tp_err_out.txt");
  EXPECT_EQ(run("--bogus-flag", report), 2);       // unknown flag
  EXPECT_EQ(run("", report), 2);                   // no trace path
  EXPECT_EQ(run("a.json b.json", report), 2);      // extra positional
  EXPECT_EQ(run(temp_file("tp_missing.json"), report), 1);

  const auto garbage = temp_file("tp_garbage.json");
  write_file(garbage, "this is not json");
  EXPECT_EQ(run(garbage, report), 1);
}

}  // namespace
