// Tests for the utility substrate (S16): RNG determinism, statistics,
// table/CSV formatting, CLI parsing, and hardware introspection fallbacks.

#include <gtest/gtest.h>

#include <sstream>

#include "util/cli.hpp"
#include "util/hw.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace mp {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Xoshiro256 r1(123), r2(123), r3(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(r1(), r2());
  }
  bool any_diff = false;
  Xoshiro256 r1b(123);
  for (int i = 0; i < 100; ++i) any_diff |= (r1b() != r3());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, BoundedIsInRange) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.bounded(bound), bound);
  }
  EXPECT_EQ(rng.bounded(0), 0u);
  EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, BoundedIsRoughlyUniform) {
  Xoshiro256 rng(11);
  constexpr int kBuckets = 8;
  int histogram[kBuckets] = {};
  constexpr int kSamples = 80000;
  for (int i = 0; i < kSamples; ++i) ++histogram[rng.bounded(kBuckets)];
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(histogram[b], kSamples / kBuckets, kSamples / kBuckets / 10)
        << "bucket " << b;
  }
}

TEST(Rng, JumpProducesDisjointStream) {
  Xoshiro256 base(42);
  Xoshiro256 jumped(42);
  jumped.jump();
  bool differs = false;
  for (int i = 0; i < 64; ++i) differs |= (base() != jumped());
  EXPECT_TRUE(differs);
}

TEST(Rng, Uniform01InRange) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Stats, SummaryBasics) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, 1.1180, 1e-3);
  EXPECT_DOUBLE_EQ(s.p50, 2.0);  // nearest-rank
}

TEST(Stats, EmptySampleIsAllZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(percentile({}, 50.0), 0.0);
  EXPECT_EQ(geomean({}), 0.0);
}

TEST(Stats, PercentileNearestRank) {
  const std::vector<double> v{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(v, 95.0), 50.0);
}

TEST(Stats, Geomean) {
  EXPECT_DOUBLE_EQ(geomean({2.0, 8.0}), 4.0);
  EXPECT_NEAR(geomean({1.0, 10.0, 100.0}), 10.0, 1e-9);
}

TEST(Table, AlignedOutput) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22222"), std::string::npos);
  // Header separator present.
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_ratio(1.966), "1.97x");
  EXPECT_EQ(fmt_percent(0.061), "6.1%");
  EXPECT_EQ(fmt_count(1048576), "1,048,576");
  EXPECT_EQ(fmt_count(1), "1");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_bytes(512), "512 B");
  EXPECT_EQ(fmt_bytes(12u << 20), "12.0 MiB");
}

TEST(Cli, ParsesFlagForms) {
  const char* argv[] = {"prog", "--size", "100", "--csv", "--name=test"};
  Cli cli(5, argv);
  ASSERT_TRUE(cli.ok());
  EXPECT_EQ(cli.get_int("size", 0), 100);
  EXPECT_TRUE(cli.get_bool("csv"));
  EXPECT_EQ(cli.get("name", ""), "test");
  EXPECT_EQ(cli.get_int("missing", 7), 7);
  EXPECT_TRUE(cli.unconsumed().empty());
}

TEST(Cli, ReportsUnconsumedFlags) {
  const char* argv[] = {"prog", "--oops", "1"};
  Cli cli(3, argv);
  ASSERT_TRUE(cli.ok());
  const auto leftover = cli.unconsumed();
  ASSERT_EQ(leftover.size(), 1u);
  EXPECT_EQ(leftover[0], "oops");
}

TEST(Cli, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "positional"};
  Cli cli(2, argv);
  EXPECT_FALSE(cli.ok());
}

TEST(Hw, HostInfoHasSaneFallbacks) {
  const HostInfo& info = host_info();
  EXPECT_GE(info.logical_cpus, 1u);
  EXPECT_GE(info.l1d_bytes(), 4u * 1024);
  EXPECT_GE(info.llc_bytes(), info.l1d_bytes());
  EXPECT_FALSE(describe(info).empty());
}

TEST(Hw, PaperMachinePreset) {
  const HostInfo paper = paper_machine();
  EXPECT_EQ(paper.logical_cpus, 12u);
  EXPECT_EQ(paper.l1d_bytes(), 32u * 1024);
  EXPECT_EQ(paper.llc_bytes(), 12u * 1024 * 1024);
  ASSERT_EQ(paper.caches.size(), 3u);
  EXPECT_FALSE(paper.caches[0].shared);
  EXPECT_TRUE(paper.caches[2].shared);
}

}  // namespace
}  // namespace mp
