// Tests for core/verify.hpp: the O(N) merge-output oracles accept exactly
// what they should and reject corruptions.

#include "core/verify.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/parallel_merge.hpp"
#include "core/segmented_merge.hpp"
#include "test_support.hpp"
#include "util/data_gen.hpp"

namespace mp {
namespace {

TEST(IsMergeOf, AcceptsRealMerges) {
  for (Dist dist : kAllDists) {
    const auto input = make_merge_input(dist, 500, 400, 901);
    const auto out = test::reference_merge(input.a, input.b);
    EXPECT_TRUE(is_merge_of(input.a.data(), 500, input.b.data(), 400,
                            out.data()))
        << to_string(dist);
    EXPECT_TRUE(is_stable_merge_of(input.a.data(), 500, input.b.data(), 400,
                                   out.data()))
        << to_string(dist);
  }
}

TEST(IsMergeOf, RejectsCorruptions) {
  const auto input = make_merge_input(Dist::kUniform, 500, 400, 903);
  auto out = test::reference_merge(input.a, input.b);

  auto wrong_value = out;
  wrong_value[100] += 1;
  EXPECT_FALSE(is_merge_of(input.a.data(), 500, input.b.data(), 400,
                           wrong_value.data()));

  auto swapped = out;
  // Swap two distinct values: still the right multiset, wrong order.
  std::size_t lo = 0;
  while (lo + 1 < swapped.size() && swapped[lo] == swapped.back()) ++lo;
  std::swap(swapped[lo], swapped.back());
  if (swapped != out) {
    EXPECT_FALSE(is_merge_of(input.a.data(), 500, input.b.data(), 400,
                             swapped.data()));
  }

  auto duplicated = out;
  duplicated[0] = duplicated[1];  // multiset changes
  if (duplicated != out) {
    EXPECT_FALSE(is_merge_of(input.a.data(), 500, input.b.data(), 400,
                             duplicated.data()));
  }
}

TEST(IsMergeOf, EmptyInputs) {
  const std::vector<std::int32_t> a{1, 2}, none;
  EXPECT_TRUE(is_merge_of(a.data(), 2, none.data(), 0, a.data()));
  EXPECT_TRUE(is_merge_of(none.data(), 0, none.data(), 0, none.data()));
}

TEST(IsStableMergeOf, DistinguishesTieOrders) {
  // With all-equal int keys the two orders are indistinguishable through
  // the comparator, so use keyed records where comp sees only the key but
  // the sequences differ: is_stable_merge_of must accept the A-first
  // sequence and is comparator-blind to the payload (so it accepts both);
  // the *sequence-level* check is done by comparing against
  // parallel_merge's actual output.
  const auto input = make_keyed_input(300, 300, 4, 905);
  std::vector<KeyedRecord> out(600);
  parallel_merge(input.a.data(), 300, input.b.data(), 300, out.data(),
                 Executor{nullptr, 4});
  EXPECT_TRUE(is_stable_merge_of(input.a.data(), 300, input.b.data(), 300,
                                 out.data()));
  // A non-stable but sorted interleaving still passes the comparator-level
  // stable check (payloads are invisible to it) — document that contract:
  auto reversed_ties = out;
  // ...but breaking SORTEDNESS must fail.
  std::swap(reversed_ties.front(), reversed_ties.back());
  if (reversed_ties.front().key != reversed_ties.back().key) {
    EXPECT_FALSE(is_stable_merge_of(input.a.data(), 300, input.b.data(),
                                    300, reversed_ties.data()));
  }
}

TEST(IsMergeOf, ValidatesEveryLibraryAlgorithmOutput) {
  const auto input = make_merge_input(Dist::kClustered, 2000, 1700, 907);
  std::vector<std::int32_t> out(3700);
  parallel_merge(input.a.data(), 2000, input.b.data(), 1700, out.data(),
                 Executor{nullptr, 6});
  EXPECT_TRUE(is_stable_merge_of(input.a.data(), 2000, input.b.data(), 1700,
                                 out.data()));
  SegmentedConfig seg;
  seg.segment_length = 333;
  segmented_parallel_merge(input.a.data(), 2000, input.b.data(), 1700,
                           out.data(), seg, Executor{nullptr, 6});
  EXPECT_TRUE(is_stable_merge_of(input.a.data(), 2000, input.b.data(), 1700,
                                 out.data()));
}

}  // namespace
}  // namespace mp
