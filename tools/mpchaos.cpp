// mpchaos — kill/restart chaos driver for the crash-consistent pipeline
// (docs/PIPELINE.md). Everything runs in-process against one simulated
// device, so the drill is fast enough for CI yet exercises the identical
// manifest/rollback machinery the cross-process `mpsort xsort` drill does.
//
//   mpchaos [--n N] [--shards S] [--memory M] [--segment-blocks B]
//           [--rate R] [--seed S] [--threads T] [--sweep]
//           [--corrupt-manifest]
//
// Default drill: a clean reference run, then a crash loop at --rate
// (default 1.0 — a crash drawn at EVERY durable step) that answers each
// injected death with a resume from the on-device manifest until the sort
// completes. The output must be byte-exact against the reference and the
// cumulative manifest counters must equal the clean run's — the proof
// that no completed unit's I/O was ever redone. Prints
//   chaos: completed after N incarnations (M crashes), output verified
// on success.
//
// --sweep additionally kills at every step index the clean run executed
// (a scripted crash per step, one full crash/resume cycle each).
// --corrupt-manifest crashes mid-run, wrecks both manifest slots, checks
// the typed ManifestError surfaces on resume, then checks a full restart
// still sorts. Exit 0 = all drills passed, 1 = violation, 2 = usage.
//
// In a MERGEPATH_FAULT=OFF build the crash hooks compile to no-ops: the
// same invocation must report 1 incarnation and 0 crashes.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "extmem/block_device.hpp"
#include "extmem/run_file.hpp"
#include "fault/fault.hpp"
#include "pipeline/pipeline.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace mp;

[[noreturn]] void usage() {
  std::cerr <<
      "usage: mpchaos [--n N] [--shards S] [--memory M]\n"
      "               [--segment-blocks B] [--rate R] [--seed S]\n"
      "               [--threads T] [--sweep] [--corrupt-manifest]\n"
      "kill/restart drill for the checkpointed external-sort pipeline:\n"
      "crash at rate R (default 1.0) at every durable step, resume until\n"
      "completion, verify bytes + no-redo counters. --sweep kills at\n"
      "every step of a clean run; --corrupt-manifest checks the torn-\n"
      "superblock path. exit 0 = passed, 1 = violation.\n";
  std::exit(2);
}

struct Options {
  std::uint64_t n = 50000;
  unsigned shards = 3;
  std::uint64_t memory_elems = 4096;
  std::uint64_t segment_blocks = 2;
  double rate = 1.0;
  std::uint64_t seed = 0;
  unsigned threads = 0;
  bool sweep = false;
  bool corrupt_manifest = false;
};

std::uint64_t parse_u64_flag(const char* flag, const char* value) {
  try {
    std::size_t parsed = 0;
    const std::uint64_t v = std::stoull(value, &parsed);
    if (parsed != std::string(value).size())
      throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    std::cerr << flag << " expects a non-negative integer, got '" << value
              << "'\n";
    usage();
  }
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--sweep") {
      opt.sweep = true;
    } else if (arg == "--corrupt-manifest") {
      opt.corrupt_manifest = true;
    } else if (arg == "--n") {
      if (++i >= argc) usage();
      opt.n = parse_u64_flag("--n", argv[i]);
    } else if (arg == "--shards") {
      if (++i >= argc) usage();
      opt.shards = static_cast<unsigned>(parse_u64_flag("--shards", argv[i]));
    } else if (arg == "--memory") {
      if (++i >= argc) usage();
      opt.memory_elems = parse_u64_flag("--memory", argv[i]);
    } else if (arg == "--segment-blocks") {
      if (++i >= argc) usage();
      opt.segment_blocks = parse_u64_flag("--segment-blocks", argv[i]);
    } else if (arg == "--seed") {
      if (++i >= argc) usage();
      opt.seed = parse_u64_flag("--seed", argv[i]);
    } else if (arg == "--threads") {
      if (++i >= argc) usage();
      opt.threads = static_cast<unsigned>(
          parse_u64_flag("--threads", argv[i]));
    } else if (arg == "--rate") {
      if (++i >= argc) usage();
      try {
        std::size_t parsed = 0;
        opt.rate = std::stod(argv[i], &parsed);
        if (parsed != std::string(argv[i]).size() || opt.rate < 0.0 ||
            opt.rate > 1.0)
          throw std::invalid_argument(argv[i]);
      } catch (const std::exception&) {
        std::cerr << "--rate expects a number in [0, 1], got '" << argv[i]
                  << "'\n";
        usage();
      }
    } else {
      std::cerr << "unknown argument " << arg << "\n";
      usage();
    }
  }
  return opt;
}

extmem::DeviceConfig drill_blocks() {
  extmem::DeviceConfig config;
  config.block_bytes = 4096;  // 1024 int32 per block: many checkpoints
  return config;
}

pipeline::PipelineConfig pipeline_config(const Options& opt) {
  pipeline::PipelineConfig cfg;
  cfg.shards = opt.shards;
  cfg.memory_elems = opt.memory_elems;
  cfg.segment_blocks = opt.segment_blocks;
  cfg.exec = Executor{nullptr, opt.threads};
  return cfg;
}

extmem::RunHandle write_input(extmem::BlockDevice& device,
                              const std::vector<std::int32_t>& values) {
  extmem::RunWriter<std::int32_t> writer(device);
  writer.append(values.data(), values.size());
  return writer.finish();
}

std::vector<std::int32_t> read_run(extmem::BlockDevice& device,
                                   extmem::RunHandle run) {
  extmem::RunReader<std::int32_t> reader(device, run);
  std::vector<std::int32_t> out;
  out.reserve(static_cast<std::size_t>(run.element_count));
  while (!reader.empty()) out.push_back(reader.next());
  return out;
}

int fail(const std::string& what) {
  std::cerr << "chaos: FAILED: " << what << "\n";
  return 1;
}

struct ChaosOutcome {
  pipeline::PipelineReport report;
  unsigned incarnations = 1;
};

/// Drives start() plus the kill/resume loop to completion. Any exception
/// other than CrashError propagates to main's diagnostic handler.
ChaosOutcome run_to_completion(extmem::BlockDevice& device,
                               extmem::RunHandle input, std::uint64_t n,
                               const pipeline::PipelineConfig& cfg) {
  auto pipe = pipeline::Pipeline<std::int32_t>::start(device, input, cfg);
  const std::uint64_t base = pipe.manifest_block();
  ChaosOutcome out;
  for (;;) {
    try {
      out.report = pipe.run();
      return out;
    } catch (const pipeline::CrashError&) {
      ++out.incarnations;
      if (out.incarnations > 1000000u)
        throw std::runtime_error("crash loop diverged (1e6 incarnations)");
      pipe = pipeline::Pipeline<std::int32_t>::resume(device, base, n, cfg);
    }
  }
}

bool counters_equal(const pipeline::PipelineReport& a,
                    const pipeline::PipelineReport& b) {
  return a.runs_formed == b.runs_formed &&
         a.segments_merged == b.segments_merged &&
         a.ranks_exchanged == b.ranks_exchanged &&
         a.checkpoints == b.checkpoints;
}

int run_drills(const Options& opt) {
  Xoshiro256 rng(opt.seed ^ 0xc4a05ULL);
  std::vector<std::int32_t> values(static_cast<std::size_t>(opt.n));
  for (auto& x : values)
    x = static_cast<std::int32_t>(rng() % 100000);  // plenty of ties
  std::vector<std::int32_t> expected = values;
  std::sort(expected.begin(), expected.end());
  const pipeline::PipelineConfig cfg = pipeline_config(opt);

  // Clean reference: the bytes and counters every drill must reproduce.
  extmem::BlockDevice clean_device(drill_blocks());
  const ChaosOutcome clean = run_to_completion(
      clean_device, write_input(clean_device, values), opt.n, cfg);
  if (clean.incarnations != 1) return fail("clean run crashed");
  if (read_run(clean_device, clean.report.output) != expected)
    return fail("clean run produced wrong bytes");

  // The main drill: rate-driven crashes, resumed until completion.
  {
    extmem::BlockDevice device(drill_blocks());
    fault::FaultPlan plan(fault::FaultConfig{opt.seed, opt.rate});
    pipeline::PipelineConfig crashy = cfg;
    crashy.crash_plan = &plan;
    Timer timer;
    const ChaosOutcome outcome = run_to_completion(
        device, write_input(device, values), opt.n, crashy);
    if (read_run(device, outcome.report.output) != expected)
      return fail("crash-loop output differs from the fault-free sort");
    if (!counters_equal(outcome.report, clean.report))
      return fail("crash loop redid completed work (counter mismatch)");
    if (outcome.report.resumes != outcome.incarnations - 1)
      return fail("resume counter does not match incarnations");
    if (fault::kFaultCompiledIn && opt.rate > 0.0 &&
        outcome.incarnations < 2)
      return fail("crash schedule never fired despite MP_FAULT=1");
    if (!fault::kFaultCompiledIn && outcome.incarnations != 1)
      return fail("crash fired in a MERGEPATH_FAULT=OFF build");
    std::cout << "chaos: completed after " << outcome.incarnations
              << " incarnations (" << outcome.incarnations - 1
              << " crashes), output verified ["
              << timer.seconds() * 1e3 << " ms, steps="
              << clean.report.steps << " checkpoints="
              << clean.report.checkpoints << "]\n";
  }

  // --sweep: a scripted kill at EVERY step the clean run executed.
  if (opt.sweep) {
    for (std::uint64_t kill = 0; kill < clean.report.steps; ++kill) {
      extmem::BlockDevice device(drill_blocks());
      fault::FaultPlan plan;
      plan.fail_op(kill, fault::FaultKind::kCrash);
      pipeline::PipelineConfig killed = cfg;
      killed.crash_plan = &plan;
      const ChaosOutcome outcome = run_to_completion(
          device, write_input(device, values), opt.n, killed);
      if (read_run(device, outcome.report.output) != expected)
        return fail("sweep kill at step " + std::to_string(kill) +
                    ": wrong bytes after resume");
      if (!counters_equal(outcome.report, clean.report))
        return fail("sweep kill at step " + std::to_string(kill) +
                    ": redone work (counter mismatch)");
    }
    std::cout << "chaos: sweep killed at each of " << clean.report.steps
              << " steps, all resumed byte-exact\n";
  }

  // --corrupt-manifest: the torn-superblock path must surface the typed
  // error on resume, and a full restart must still sort.
  if (opt.corrupt_manifest) {
    extmem::BlockDevice device(drill_blocks());
    const extmem::RunHandle input = write_input(device, values);
    fault::FaultPlan plan;
    plan.fail_op(8, fault::FaultKind::kCrash);
    pipeline::PipelineConfig killed = cfg;
    killed.crash_plan = &plan;
    auto pipe =
        pipeline::Pipeline<std::int32_t>::start(device, input, killed);
    const std::uint64_t base = pipe.manifest_block();
    try {
      pipe.run();
      if (fault::kFaultCompiledIn)
        return fail("scripted crash at step 8 never fired");
    } catch (const pipeline::CrashError&) {
    }
    pipeline::ManifestStore store = pipeline::ManifestStore::attach(
        device, base,
        pipeline::worst_case_manifest_bytes(cfg.shards, opt.n,
                                            cfg.memory_elems));
    store.corrupt_slot(0);
    store.corrupt_slot(1);
    bool typed = false;
    try {
      pipeline::Pipeline<std::int32_t>::resume(device, base, opt.n, cfg);
    } catch (const pipeline::ManifestError&) {
      typed = true;
    }
    if (!typed)
      return fail("resume on a fully corrupt manifest did not throw "
                  "ManifestError");
    auto fresh = pipeline::Pipeline<std::int32_t>::start(device, input, cfg);
    if (read_run(device, fresh.run().output) != expected)
      return fail("full restart after manifest loss produced wrong bytes");
    std::cout << "chaos: corrupt-manifest drill passed (typed error, "
                 "full restart verified)\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  try {
    return run_drills(opt);
  } catch (const std::exception& error) {
    return fail(std::string("unexpected exception: ") + error.what());
  }
}
