/// \file mpserve.cpp
/// Merge-as-a-service driver: runs the closed-loop load generator against
/// an `mp::serve::Server` and reports throughput + tail latency, with the
/// full observability surface behind flags. This is the binary CI uses
/// for the serving smoke (trace + metrics validated by
/// scripts/check_trace.py) and the fault SLO drill (lane faults at a
/// given rate; the flight recorder snapshots the degrade; the exit code
/// proves every accepted request was answered).
///
/// Usage: mpserve [flags]
///   workload
///     --requests N          total closed-loop requests (default 512)
///     --sessions N          concurrent sessions (default 16)
///     --window N            per-session outstanding window (default 4)
///     --seed N              workload seed (default 42)
///     --min-elements N      smallest request (default 4096)
///     --max-elements N      largest request (default 65536)
///     --skew S              size skew; higher = smaller requests dominate
///                           (default 4)
///     --merge-fraction F    fraction of merge requests (default 0.10)
///     --width64-fraction F  fraction of 64-bit-key requests (default 0.25)
///   server
///     --threads N           executor lanes (default 8)
///     --queue-capacity N    bounded queue size (default 1024)
///     --no-batch            disable cross-request coalescing
///   faults (SLO drill)
///     --lane-fault-rate R   inject lane faults at rate R (default 0)
///     --fault-seed N        fault plan seed (default 1)
///   observability
///     --trace FILE          Chrome/Perfetto trace of the run
///     --metrics-json FILE   metrics + span-percentile report
///     --prometheus FILE     Prometheus text exposition of the counters
///     --flight-dump FILE    flight-recorder snapshot, written only if the
///                           run actually degraded (the SLO drill asserts
///                           both the file and the 100%-answered line)
///     --recalibrate-us N    FastClock periodic re-calibration interval
///
/// Exits 0 only when every accepted request was answered kOk and the
/// load generator's conservation/ordering/payload checks all pass.

#include <cstdint>
#include <iostream>
#include <optional>
#include <string>

#include "fault/fault.hpp"
#include "obs/fastclock.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/percentiles.hpp"
#include "obs/trace.hpp"
#include "serve/loadgen.hpp"
#include "serve/serve.hpp"
#include "util/cli.hpp"
#include "util/threading.hpp"

int main(int argc, char** argv) {
  using namespace mp;

  Cli cli(argc, argv);
  serve::LoadGenConfig lg;
  lg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  lg.requests = static_cast<std::size_t>(cli.get_int("requests", 512));
  lg.sessions = static_cast<std::size_t>(cli.get_int("sessions", 16));
  lg.window = static_cast<std::size_t>(cli.get_int("window", 4));
  lg.mix.min_elements =
      static_cast<std::size_t>(cli.get_int("min-elements", 4096));
  lg.mix.max_elements =
      static_cast<std::size_t>(cli.get_int("max-elements", 65536));
  lg.mix.size_skew = cli.get_double("skew", 4.0);
  lg.mix.merge_fraction = cli.get_double("merge-fraction", 0.10);
  lg.mix.width64_fraction = cli.get_double("width64-fraction", 0.25);
  const auto threads = static_cast<unsigned>(cli.get_int("threads", 8));
  const auto queue_capacity =
      static_cast<std::size_t>(cli.get_int("queue-capacity", 1024));
  const bool no_batch = cli.get_bool("no-batch");
  const double fault_rate = cli.get_double("lane-fault-rate", 0.0);
  const auto fault_seed =
      static_cast<std::uint64_t>(cli.get_int("fault-seed", 1));
  const std::string trace_path = cli.get("trace", "");
  const std::string metrics_path = cli.get("metrics-json", "");
  const std::string prometheus_path = cli.get("prometheus", "");
  const std::string flight_path = cli.get("flight-dump", "");
  const auto recalibrate_us =
      static_cast<std::uint64_t>(cli.get_int("recalibrate-us", 0));
  if (!cli.ok()) {
    std::cerr << "error: " << cli.error() << "\n";
    return 2;
  }
  if (const auto leftover = cli.unconsumed(); !leftover.empty()) {
    std::cerr << "error: unknown flag(s):";
    for (const auto& f : leftover) std::cerr << " --" << f;
    std::cerr << "\n";
    return 2;
  }

  // Observability arming mirrors the bench-harness conventions: the
  // flight recorder stays enabled only when a dump path is given, the
  // metrics report implies lane metrics + span percentiles.
  if (!flight_path.empty()) {
    obs::set_flight_enabled(true);
    obs::set_flight_dump_path(flight_path);
  } else {
    obs::set_flight_enabled(false);
  }
  if (!trace_path.empty()) obs::arm_tracing();
  const bool want_metrics = !metrics_path.empty() || !prometheus_path.empty();
  if (want_metrics) {
    obs::LaneMetrics::instance().arm();
    obs::reset_span_stats();
    obs::arm_span_stats();
  }
  if (recalibrate_us > 0)
    obs::FastClock::recalibrate_every(recalibrate_us * 1000);

  ThreadPool pool(threads);
  fault::FaultPlan plan(fault::FaultConfig{
      fault_seed, fault_rate, /*latency_us=*/250.0, /*lane_delay_us=*/200.0});
  std::optional<fault::ScopedInjector<ThreadPool>> injector;
  if (fault_rate > 0.0) injector.emplace(pool, plan);

  serve::ServerConfig cfg;
  cfg.exec = Executor{&pool, threads};
  cfg.queue_capacity = queue_capacity;
  cfg.batching = !no_batch;

  serve::LoadGenReport rep;
  serve::ServerStats stats;
  {
    serve::Server server(cfg);
    rep = serve::run_closed_loop(server, lg);
    server.shutdown();
    stats = server.stats();
  }

  std::cout << "mode: " << (cfg.batching ? "batched" : "unbatched")
            << "  threads: " << threads << "  seed: " << lg.seed << "\n"
            << "submitted: " << rep.submitted << "  accepted: " << rep.accepted
            << "  rejected: " << rep.rejected << "\n"
            << "completed: " << rep.completed << "  failed: " << rep.failed
            << "  cancelled: " << rep.cancelled << "\n"
            << "batches: " << stats.batches
            << "  batched_responses: " << rep.batched
            << "  degraded_responses: " << rep.degraded << "\n"
            << "throughput_rps: " << rep.throughput_rps()
            << "  elems_per_s: " << rep.throughput_elems_s() << "\n"
            << "p50_us: " << rep.latency_ns(0.50) / 1e3
            << "  p99_us: " << rep.latency_ns(0.99) / 1e3
            << "  p999_us: " << rep.latency_ns(0.999) / 1e3 << "\n";
  if (fault_rate > 0.0)
    std::cout << "fault_rate: " << fault_rate
              << "  injected: " << plan.stats().injected
              << "  schedule_hash: " << plan.schedule_hash() << "\n";

  // Artifacts after the run so they capture everything.
  if (!trace_path.empty()) {
    obs::disarm_tracing();
    if (obs::write_chrome_trace_file(trace_path))
      std::cerr << "trace written to " << trace_path << "\n";
  }
  if (want_metrics) {
    obs::LaneMetrics::instance().disarm();
    obs::disarm_span_stats();
  }
  if (!metrics_path.empty() && obs::write_metrics_json_file(metrics_path))
    std::cerr << "metrics written to " << metrics_path << "\n";
  if (!prometheus_path.empty() && obs::export_prometheus_file(prometheus_path))
    std::cerr << "prometheus exposition written to " << prometheus_path
              << "\n";
  // Written only when a degrade actually fired (flight_report_degraded),
  // which is exactly what the SLO drill wants to prove happened.
  if (!flight_path.empty() && obs::flight_write_pending(/*force=*/false))
    std::cerr << "flight snapshot written to " << flight_path << "\n";

  const bool all_answered = rep.completed == rep.accepted && rep.failed == 0 &&
                            rep.cancelled == 0;
  std::cout << "answered: " << rep.completed << "/" << rep.accepted << "\n";
  if (!rep.ok() || !all_answered) {
    std::cerr << "SLO FAIL: conservation=" << rep.conservation_ok
              << " ordering=" << rep.ordering_ok
              << " payload=" << rep.payload_ok << " failed=" << rep.failed
              << "\n";
    return 1;
  }
  return 0;
}
