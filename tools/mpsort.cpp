// mpsort — command-line sorting and merging built on the mergepath library.
//
//   mpsort sort   <input> <output> [--binary] [--threads N] [--numeric]
//   mpsort merge  <output> <input1> <input2> [...inputN] [--binary]
//   mpsort check  <input> [--binary] [--numeric]
//
// Text mode (default) operates on newline-delimited records, sorted
// lexicographically (or numerically with --numeric); --binary treats the
// file as a flat array of little-endian int32. `merge` requires its
// inputs to be pre-sorted (verified up front) and k-way merges them with
// the parallel multiway merge; `sort` uses the parallel merge sort;
// `check` verifies order and reports the first violation.

#include <charconv>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "core/mergepath.hpp"
#include "util/timer.hpp"

namespace {

using namespace mp;

[[noreturn]] void usage() {
  std::cerr <<
      "usage:\n"
      "  mpsort sort  <input> <output> [--binary] [--numeric] [--threads N]\n"
      "  mpsort merge <output> <in1> <in2> [...] [--binary] [--threads N]\n"
      "  mpsort check <input> [--binary] [--numeric]\n";
  std::exit(2);
}

struct Options {
  bool binary = false;
  bool numeric = false;
  unsigned threads = 0;
  std::vector<std::string> files;
};

Options parse(int argc, char** argv, int first) {
  Options opt;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--binary") {
      opt.binary = true;
    } else if (arg == "--numeric") {
      opt.numeric = true;
    } else if (arg == "--threads") {
      if (++i >= argc) usage();
      opt.threads = static_cast<unsigned>(std::stoul(argv[i]));
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown flag " << arg << "\n";
      usage();
    } else {
      opt.files.push_back(arg);
    }
  }
  return opt;
}

std::vector<std::int32_t> read_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    std::exit(1);
  }
  in.seekg(0, std::ios::end);
  const auto bytes = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::int32_t> data(bytes / sizeof(std::int32_t));
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size() * sizeof(std::int32_t)));
  return data;
}

void write_binary(const std::string& path,
                  const std::vector<std::int32_t>& data) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(std::int32_t)));
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    std::exit(1);
  }
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

void write_lines(const std::string& path,
                 const std::vector<std::string>& lines) {
  std::ofstream out(path);
  for (const auto& line : lines) out << line << '\n';
}

/// Numeric-aware line comparator: parses a leading long long from each
/// line; unparsable lines order after numbers, lexicographically.
struct NumericLess {
  static std::pair<bool, long long> value_of(const std::string& s) {
    long long v = 0;
    const auto [ptr, ec] =
        std::from_chars(s.data(), s.data() + s.size(), v);
    return {ec == std::errc{} && ptr != s.data(), v};
  }
  bool operator()(const std::string& x, const std::string& y) const {
    const auto [xn, xv] = value_of(x);
    const auto [yn, yv] = value_of(y);
    if (xn && yn) return xv < yv || (xv == yv && x < y);
    if (xn != yn) return xn;  // numbers before non-numbers
    return x < y;
  }
};

template <typename T, typename Comp>
int run_sort(const Options& opt, std::vector<T> data, Comp comp,
             auto write_fn) {
  Timer timer;
  parallel_merge_sort(data.data(), data.size(),
                      Executor{nullptr, opt.threads}, comp);
  std::cerr << "sorted " << data.size() << " records in "
            << timer.seconds() * 1e3 << " ms\n";
  write_fn(opt.files[1], data);
  return 0;
}

template <typename T, typename Comp>
int run_merge(const Options& opt, std::vector<std::vector<T>> inputs,
              Comp comp, auto write_fn) {
  for (std::size_t f = 0; f < inputs.size(); ++f) {
    if (!std::is_sorted(inputs[f].begin(), inputs[f].end(), comp)) {
      std::cerr << "input " << opt.files[f + 1] << " is not sorted\n";
      return 1;
    }
  }
  std::vector<std::span<const T>> views;
  std::size_t total = 0;
  for (const auto& in : inputs) {
    views.emplace_back(in.data(), in.size());
    total += in.size();
  }
  std::vector<T> merged(total);
  Timer timer;
  parallel_multiway_merge(std::span<const std::span<const T>>(views),
                          merged.data(), Executor{nullptr, opt.threads},
                          comp);
  std::cerr << "merged " << inputs.size() << " inputs, " << total
            << " records in " << timer.seconds() * 1e3 << " ms\n";
  write_fn(opt.files[0], merged);
  return 0;
}

template <typename T, typename Comp>
int run_check(const std::string& path, const std::vector<T>& data,
              Comp comp) {
  for (std::size_t i = 1; i < data.size(); ++i) {
    if (comp(data[i], data[i - 1])) {
      std::cout << path << ": NOT sorted (first violation at record " << i
                << ")\n";
      return 1;
    }
  }
  std::cout << path << ": sorted (" << data.size() << " records)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) usage();
  const std::string command = argv[1];
  const Options opt = parse(argc, argv, 2);

  if (command == "sort") {
    if (opt.files.size() != 2) usage();
    if (opt.binary)
      return run_sort(opt, read_binary(opt.files[0]), std::less<>{},
                      write_binary);
    if (opt.numeric)
      return run_sort(opt, read_lines(opt.files[0]), NumericLess{},
                      write_lines);
    return run_sort(opt, read_lines(opt.files[0]), std::less<>{},
                    write_lines);
  }
  if (command == "merge") {
    if (opt.files.size() < 3) usage();
    if (opt.binary) {
      std::vector<std::vector<std::int32_t>> inputs;
      for (std::size_t f = 1; f < opt.files.size(); ++f)
        inputs.push_back(read_binary(opt.files[f]));
      return run_merge(opt, std::move(inputs), std::less<>{}, write_binary);
    }
    std::vector<std::vector<std::string>> inputs;
    for (std::size_t f = 1; f < opt.files.size(); ++f)
      inputs.push_back(read_lines(opt.files[f]));
    return run_merge(opt, std::move(inputs), std::less<>{}, write_lines);
  }
  if (command == "check") {
    if (opt.files.size() != 1) usage();
    if (opt.binary)
      return run_check(opt.files[0], read_binary(opt.files[0]),
                       std::less<>{});
    if (opt.numeric)
      return run_check(opt.files[0], read_lines(opt.files[0]),
                       NumericLess{});
    return run_check(opt.files[0], read_lines(opt.files[0]), std::less<>{});
  }
  usage();
}
