// mpsort — command-line sorting and merging built on the mergepath library.
//
//   mpsort sort   <input> <output> [--binary] [--threads N] [--numeric]
//   mpsort merge  <output> <input1> <input2> [...inputN] [--binary]
//   mpsort check  <input> [--binary] [--numeric]
//
// Text mode (default) operates on newline-delimited records, sorted
// lexicographically (or numerically with --numeric); --binary treats the
// file as a flat array of little-endian int32. `merge` requires its
// inputs to be pre-sorted (verified up front) and k-way merges them with
// the parallel multiway merge; `sort` uses the parallel merge sort;
// `check` verifies order and reports the first violation.
//
// Observability (docs/OBSERVABILITY.md): --trace writes a Chrome/Perfetto
// trace_event JSON of the run's lane spans; --metrics prints the per-lane
// balance table to stderr; --metrics-json writes the machine-readable
// metrics report.
//
// Fault drills (docs/TESTING.md): `sort --binary --fault-rate R
// [--fault-seed S]` routes the sort through the external-memory path on a
// simulated device with a seeded fault schedule armed — the CLI face of
// the recovery machinery. The output is byte-identical to the fault-free
// sort; a schedule the retries cannot absorb exits 1 with a typed
// diagnostic, never an abort.
//
// `sort --binary --lane-fault-rate R [--fault-seed S]` is the in-memory
// twin: a dedicated ThreadPool with the schedule attached injects lane
// throws/abandons/stalls into the parallel merge sort, and the recovery
// layer (core/recovery.hpp) retries the failed lanes' disjoint segments
// with straggler hedging on. Prints the schedule hash — two runs with the
// same seed print the same hash and produce byte-identical output.
//
// `xsort` (docs/PIPELINE.md) is the crash-consistent pipeline's CLI face:
// a checkpointed sharded external sort whose simulated device persists to
// --device <image> across process exits. An injected crash (--crash-at K
// or --crash-rate R) saves the image mid-flight and exits 3; rerunning
// with --resume rolls back to the last checkpoint and continues —
// repeat until exit 0. --corrupt-manifest wrecks both manifest slots in
// an existing image (the torn-superblock drill): the next --resume exits
// 4 (typed ManifestError, full restart required — never wrong bytes).
// Exit codes: 0 sorted, 1 typed I/O or network failure, 2 usage,
// 3 crashed (resumable), 4 manifest unrecoverable.

#include <charconv>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include <optional>

#include "core/mergepath.hpp"
#include "dist/netsim.hpp"
#include "extmem/external_sort.hpp"
#include "fault/fault.hpp"
#include "kernels/kernels.hpp"
#include "pipeline/pipeline.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/percentiles.hpp"
#include "obs/trace.hpp"
#include "util/hw.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace mp;

[[noreturn]] void usage() {
  std::cerr <<
      "usage:\n"
      "  mpsort sort  <input> <output> [--binary] [--numeric] [--threads N]\n"
      "  mpsort merge <output> <in1> <in2> [...] [--binary] [--numeric]\n"
      "               [--threads N]\n"
      "  mpsort check <input> [--binary] [--numeric]\n"
      "  mpsort xsort <input> <output> --device <image> [--resume]\n"
      "               [--shards N] [--memory N] [--segment-blocks N]\n"
      "               [--no-double-buffer] [--threads N] [--crash-at K]\n"
      "               [--crash-rate R] [--crash-seed S] [--corrupt-manifest]\n"
      "               crash-consistent external sort of little-endian int32;\n"
      "               the simulated device persists to --device across\n"
      "               incarnations. exits: 0 sorted, 1 typed I/O error,\n"
      "               3 crashed (rerun with --resume), 4 manifest\n"
      "               unrecoverable (full restart)\n"
      "kernel selection (any command):\n"
      "  --kernel K             force the per-lane merge kernel, K in\n"
      "                         scalar|branchless|sse4|avx2|avx512 (default: the\n"
      "                         widest ISA the host supports)\n"
      "observability (any command):\n"
      "  --trace <file.json>    write a Chrome/Perfetto trace of the run\n"
      "  --metrics              print the per-lane balance and span\n"
      "                         percentile tables to stderr\n"
      "  --metrics-json <file>  write the metrics report as JSON\n"
      "                         (includes per-span p50/p95/p99)\n"
      "  --prometheus <file>    write Prometheus text metrics (counters,\n"
      "                         gauges, span duration percentiles)\n"
      "  --flight-dump <file>   write the flight-recorder snapshot (the\n"
      "                         last spans of every thread) at exit; on a\n"
      "                         degraded run the dump happens even without\n"
      "                         this flag when MP_FLIGHT_DUMP is set\n"
      "fault drill (sort --binary only):\n"
      "  --fault-rate R         sort externally on a simulated device with\n"
      "                         per-op fault probability R in [0, 1]\n"
      "  --lane-fault-rate R    sort in memory on a pool injecting lane\n"
      "                         faults with probability R; failed lanes are\n"
      "                         retried, stragglers hedged\n"
      "  --fault-seed N         schedule seed (default 0); same seed =>\n"
      "                         same faults, same result\n";
  std::exit(2);
}

struct Options {
  bool binary = false;
  bool numeric = false;
  bool metrics = false;
  unsigned threads = 0;
  std::uint64_t fault_seed = 0;
  double fault_rate = 0.0;
  double lane_fault_rate = 0.0;
  std::string trace_path;
  std::string metrics_json;
  std::string prometheus_path;
  std::string flight_dump;
  // xsort (the crash-consistent pipeline):
  std::string device_path;
  bool resume = false;
  bool corrupt_manifest = false;
  bool no_double_buffer = false;
  unsigned shards = 4;
  std::uint64_t memory_elems = 1ull << 15;
  std::uint64_t segment_blocks = 4;
  double crash_rate = 0.0;
  std::uint64_t crash_seed = 0;
  std::int64_t crash_at = -1;  ///< scripted kill step; -1 = none
  std::vector<std::string> files;
};

std::uint64_t parse_u64_flag(const char* flag, const char* value) {
  try {
    std::size_t parsed = 0;
    const std::uint64_t v = std::stoull(value, &parsed);
    if (parsed != std::string(value).size())
      throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    std::cerr << flag << " expects a non-negative integer, got '" << value
              << "'\n";
    usage();
  }
}

Options parse(int argc, char** argv, int first) {
  Options opt;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--binary") {
      opt.binary = true;
    } else if (arg == "--numeric") {
      opt.numeric = true;
    } else if (arg == "--metrics") {
      opt.metrics = true;
    } else if (arg == "--trace") {
      if (++i >= argc) usage();
      opt.trace_path = argv[i];
    } else if (arg == "--metrics-json") {
      if (++i >= argc) usage();
      opt.metrics_json = argv[i];
    } else if (arg == "--prometheus") {
      if (++i >= argc) usage();
      opt.prometheus_path = argv[i];
    } else if (arg == "--flight-dump") {
      if (++i >= argc) usage();
      opt.flight_dump = argv[i];
    } else if (arg == "--kernel") {
      if (++i >= argc) usage();
      const auto kernel = kernels::parse_kernel(argv[i]);
      if (!kernel) {
        std::cerr << "--kernel expects scalar|branchless|sse4|avx2|avx512, got '"
                  << argv[i] << "'\n";
        usage();
      }
      if (!kernels::set_kernel(*kernel)) {
        std::cerr << "--kernel " << argv[i]
                  << " is not supported on this host/build (isa "
                  << isa_string(cpu_features())
                  << (kernels::kSimdCompiledIn ? "" : ", SIMD compiled out")
                  << ")\n";
        std::exit(2);
      }
    } else if (arg == "--threads") {
      if (++i >= argc) usage();
      // std::stoul aborts the process on bad input if the exception
      // escapes main; turn "--threads banana" into a usage error instead.
      try {
        std::size_t parsed = 0;
        const unsigned long v = std::stoul(argv[i], &parsed);
        if (parsed != std::string(argv[i]).size() ||
            v > std::numeric_limits<unsigned>::max())
          throw std::out_of_range(argv[i]);
        opt.threads = static_cast<unsigned>(v);
      } catch (const std::exception&) {
        std::cerr << "--threads expects a non-negative integer, got '"
                  << argv[i] << "'\n";
        usage();
      }
    } else if (arg == "--fault-seed") {
      if (++i >= argc) usage();
      try {
        std::size_t parsed = 0;
        opt.fault_seed = std::stoull(argv[i], &parsed);
        if (parsed != std::string(argv[i]).size())
          throw std::invalid_argument(argv[i]);
      } catch (const std::exception&) {
        std::cerr << "--fault-seed expects a non-negative integer, got '"
                  << argv[i] << "'\n";
        usage();
      }
    } else if (arg == "--device") {
      if (++i >= argc) usage();
      opt.device_path = argv[i];
    } else if (arg == "--resume") {
      opt.resume = true;
    } else if (arg == "--corrupt-manifest") {
      opt.corrupt_manifest = true;
    } else if (arg == "--no-double-buffer") {
      opt.no_double_buffer = true;
    } else if (arg == "--shards") {
      if (++i >= argc) usage();
      opt.shards = static_cast<unsigned>(
          parse_u64_flag("--shards", argv[i]));
    } else if (arg == "--memory") {
      if (++i >= argc) usage();
      opt.memory_elems = parse_u64_flag("--memory", argv[i]);
    } else if (arg == "--segment-blocks") {
      if (++i >= argc) usage();
      opt.segment_blocks = parse_u64_flag("--segment-blocks", argv[i]);
    } else if (arg == "--crash-seed") {
      if (++i >= argc) usage();
      opt.crash_seed = parse_u64_flag("--crash-seed", argv[i]);
    } else if (arg == "--crash-at") {
      if (++i >= argc) usage();
      opt.crash_at = static_cast<std::int64_t>(
          parse_u64_flag("--crash-at", argv[i]));
    } else if (arg == "--crash-rate" || arg == "--fault-rate" ||
               arg == "--lane-fault-rate") {
      if (++i >= argc) usage();
      double& rate = arg == "--crash-rate"    ? opt.crash_rate
                     : arg == "--fault-rate" ? opt.fault_rate
                                             : opt.lane_fault_rate;
      try {
        std::size_t parsed = 0;
        rate = std::stod(argv[i], &parsed);
        if (parsed != std::string(argv[i]).size() || rate < 0.0 ||
            rate > 1.0)
          throw std::invalid_argument(argv[i]);
      } catch (const std::exception&) {
        std::cerr << arg << " expects a number in [0, 1], got '"
                  << argv[i] << "'\n";
        usage();
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown flag " << arg << "\n";
      usage();
    } else {
      opt.files.push_back(arg);
    }
  }
  return opt;
}

std::vector<std::int32_t> read_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    std::exit(1);
  }
  in.seekg(0, std::ios::end);
  const auto bytes = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::int32_t> data(bytes / sizeof(std::int32_t));
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size() * sizeof(std::int32_t)));
  return data;
}

void write_binary(const std::string& path,
                  const std::vector<std::int32_t>& data) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(std::int32_t)));
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    std::exit(1);
  }
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

void write_lines(const std::string& path,
                 const std::vector<std::string>& lines) {
  std::ofstream out(path);
  for (const auto& line : lines) out << line << '\n';
}

/// Numeric-aware line comparator: parses a leading long long from each
/// line; unparsable lines order after numbers, lexicographically.
struct NumericLess {
  static std::pair<bool, long long> value_of(const std::string& s) {
    long long v = 0;
    const auto [ptr, ec] =
        std::from_chars(s.data(), s.data() + s.size(), v);
    return {ec == std::errc{} && ptr != s.data(), v};
  }
  bool operator()(const std::string& x, const std::string& y) const {
    const auto [xn, xv] = value_of(x);
    const auto [yn, yv] = value_of(y);
    if (xn && yn) return xv < yv || (xv == yv && x < y);
    if (xn != yn) return xn;  // numbers before non-numbers
    return x < y;
  }
};

template <typename T, typename Comp>
int run_sort(const Options& opt, std::vector<T> data, Comp comp,
             auto write_fn) {
  const Executor exec{nullptr, opt.threads};
  Timer timer;
  if (obs::lane_metrics_armed()) {
    std::vector<OpCounts> ops(exec.resolve_threads());
    parallel_merge_sort(data.data(), data.size(), exec, comp,
                        std::span<OpCounts>(ops));
    for (std::size_t lane = 0; lane < ops.size(); ++lane)
      obs::LaneMetrics::instance().record_ops(static_cast<unsigned>(lane),
                                              ops[lane]);
  } else {
    parallel_merge_sort(data.data(), data.size(), exec, comp);
  }
  std::cerr << "sorted " << data.size() << " records in "
            << timer.seconds() * 1e3 << " ms\n";
  write_fn(opt.files[1], data);
  return 0;
}

template <typename T, typename Comp>
int run_merge(const Options& opt, std::vector<std::vector<T>> inputs,
              Comp comp, auto write_fn) {
  for (std::size_t f = 0; f < inputs.size(); ++f) {
    if (!std::is_sorted(inputs[f].begin(), inputs[f].end(), comp)) {
      std::cerr << "input " << opt.files[f + 1] << " is not sorted\n";
      return 1;
    }
  }
  std::vector<std::span<const T>> views;
  std::size_t total = 0;
  for (const auto& in : inputs) {
    views.emplace_back(in.data(), in.size());
    total += in.size();
  }
  std::vector<T> merged(total);
  const Executor exec{nullptr, opt.threads};
  Timer timer;
  if (obs::lane_metrics_armed()) {
    std::vector<OpCounts> ops(exec.resolve_threads());
    parallel_multiway_merge(std::span<const std::span<const T>>(views),
                            merged.data(), exec, comp,
                            std::span<OpCounts>(ops));
    for (std::size_t lane = 0; lane < ops.size(); ++lane)
      obs::LaneMetrics::instance().record_ops(static_cast<unsigned>(lane),
                                              ops[lane]);
  } else {
    parallel_multiway_merge(std::span<const std::span<const T>>(views),
                            merged.data(), exec, comp);
  }
  std::cerr << "merged " << inputs.size() << " inputs, " << total
            << " records in " << timer.seconds() * 1e3 << " ms\n";
  write_fn(opt.files[0], merged);
  return 0;
}

template <typename T, typename Comp>
int run_check(const std::string& path, const std::vector<T>& data,
              Comp comp) {
  for (std::size_t i = 1; i < data.size(); ++i) {
    if (comp(data[i], data[i - 1])) {
      std::cout << path << ": NOT sorted (first violation at record " << i
                << ")\n";
      return 1;
    }
  }
  std::cout << path << ": sorted (" << data.size() << " records)\n";
  return 0;
}

/// `sort --binary --fault-rate R`: the external-memory sort on a
/// simulated device with a seeded fault schedule armed. Recoverable
/// faults are retried (the result is still the exact stable sort);
/// permanent ones exit 1 with the typed diagnostic.
int run_fault_sort(const Options& opt) {
  extmem::BlockDevice device;
  fault::FaultPlan plan(
      fault::FaultConfig{opt.fault_seed, opt.fault_rate, 250.0});
  fault::ScopedInjector injector(device, plan);
  extmem::ExternalSortConfig config;
  config.exec = Executor{nullptr, opt.threads};
  Timer timer;
  try {
    extmem::ExternalSortReport report;
    const auto sorted = extmem::external_sort_vector(
        device, read_binary(opt.files[0]), config, &report);
    std::cerr << "sorted " << sorted.size() << " records in "
              << timer.seconds() * 1e3 << " ms (fault seed "
              << opt.fault_seed << " rate " << opt.fault_rate << ": "
              << report.faults_injected << " faults injected, "
              << report.io_retries << " retries)\n";
    if (!fault::kFaultCompiledIn)
      std::cerr << "mpsort: fault injection compiled out "
                   "(MERGEPATH_FAULT=OFF); the schedule never fired\n";
    write_binary(opt.files[1], sorted);
    return 0;
  } catch (const extmem::IoError& error) {
    std::cerr << "mpsort: sort failed: " << error.what() << "\n";
    return 1;
  }
}

/// `sort --binary --lane-fault-rate R`: the in-memory parallel merge sort
/// on a dedicated ThreadPool carrying a seeded lane-fault schedule, driven
/// through the recovery layer with straggler hedging on. The output is the
/// exact stable sort whatever the schedule injects; the printed schedule
/// hash proves replay determinism (same seed => same hash, same bytes).
int run_lane_fault_sort(const Options& opt) {
  auto data = read_binary(opt.files[0]);
  // A dedicated pool: the armed plan must not leak into the shared pool.
  ThreadPool pool(opt.threads == 0 ? -1 : static_cast<int>(opt.threads) - 1);
  fault::FaultPlan plan(
      fault::FaultConfig{opt.fault_seed, opt.lane_fault_rate, 250.0});
  fault::ScopedInjector injector(pool, plan);
  RecoveryConfig cfg;
  cfg.hedge.enabled = true;
  const Executor exec{&pool, opt.threads};
  Timer timer;
  const RecoveryReport report =
      resilient_parallel_merge_sort(data.data(), data.size(), exec,
                                    std::less<>{}, cfg);
  std::cerr << "sorted " << data.size() << " records in "
            << timer.seconds() * 1e3 << " ms (lane-fault seed "
            << opt.fault_seed << " rate " << opt.lane_fault_rate << ": "
            << report.injected_faults << " faults injected, "
            << report.retried_lanes << " lane retries, " << report.hedges
            << " hedges, " << report.fallback_lanes
            << " sequential fallbacks; schedule-hash "
            << plan.schedule_hash() << ")\n";
  if (!fault::kFaultCompiledIn)
    std::cerr << "mpsort: fault injection compiled out "
                 "(MERGEPATH_FAULT=OFF); the schedule never fired\n";
  write_binary(opt.files[1], data);
  return 0;
}

/// `xsort`: the crash-consistent checkpointed pipeline with the simulated
/// device persisted to an image file, so "crash" really is process death —
/// a later invocation resumes another incarnation against the same
/// storage bytes. The manifest base block rides in the image's user word;
/// the element count is the input file's size (both incarnations read the
/// same input file).
int run_xsort(const Options& opt) {
  if (opt.files.size() != 2 || opt.device_path.empty()) usage();
  if (opt.resume && opt.corrupt_manifest) {
    std::cerr << "--resume and --corrupt-manifest are separate drills; "
                 "pick one\n";
    usage();
  }
  const std::vector<std::int32_t> input_data = read_binary(opt.files[0]);
  const std::uint64_t n = input_data.size();

  pipeline::PipelineConfig cfg;
  cfg.shards = opt.shards;
  cfg.memory_elems = opt.memory_elems;
  cfg.segment_blocks = opt.segment_blocks;
  cfg.double_buffer = !opt.no_double_buffer;
  cfg.exec = Executor{nullptr, opt.threads};
  fault::FaultPlan crash_plan =
      opt.crash_rate > 0.0
          ? fault::FaultPlan(
                fault::FaultConfig{opt.crash_seed, opt.crash_rate})
          : fault::FaultPlan();
  if (opt.crash_at >= 0)
    crash_plan.fail_op(static_cast<std::uint64_t>(opt.crash_at),
                       fault::FaultKind::kCrash);
  if (opt.crash_rate > 0.0 || opt.crash_at >= 0) {
    cfg.crash_plan = &crash_plan;
    if (!fault::kFaultCompiledIn)
      std::cerr << "mpsort: fault injection compiled out "
                   "(MERGEPATH_FAULT=OFF); the crash schedule never "
                   "fires\n";
  }

  const auto load_device = [&](std::uint64_t* base) {
    std::ifstream in(opt.device_path, std::ios::binary);
    if (!in) {
      std::cerr << "cannot open device image " << opt.device_path << "\n";
      std::exit(1);
    }
    return extmem::BlockDevice::load_image(in, base);
  };
  const auto save_device = [&](const extmem::BlockDevice& device,
                               std::uint64_t base) {
    std::ofstream out(opt.device_path,
                      std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "cannot write device image " << opt.device_path << "\n";
      std::exit(1);
    }
    device.save_image(out, base);
  };

  try {
    if (opt.corrupt_manifest) {
      // The torn-superblock drill: wreck BOTH checkpoint slots of an
      // existing image, so the next --resume must fail typed (exit 4).
      std::uint64_t base = 0;
      extmem::BlockDevice device = load_device(&base);
      pipeline::ManifestStore store = pipeline::ManifestStore::attach(
          device, base,
          pipeline::worst_case_manifest_bytes(cfg.shards, n,
                                              cfg.memory_elems));
      store.corrupt_slot(0);
      store.corrupt_slot(1);
      save_device(device, base);
      std::cerr << "mpsort: corrupted both manifest slots in "
                << opt.device_path << "\n";
      return 0;
    }

    std::uint64_t base = 0;
    std::optional<extmem::BlockDevice> device;
    std::optional<pipeline::Pipeline<std::int32_t>> pipe;
    if (opt.resume) {
      device.emplace(load_device(&base));
      pipe.emplace(pipeline::Pipeline<std::int32_t>::resume(*device, base,
                                                            n, cfg));
    } else {
      device.emplace();
      extmem::RunWriter<std::int32_t> writer(*device);
      writer.append(input_data.data(), input_data.size());
      pipe.emplace(pipeline::Pipeline<std::int32_t>::start(
          *device, writer.finish(), cfg));
      base = pipe->manifest_block();
    }

    Timer timer;
    try {
      const pipeline::PipelineReport report = pipe->run();
      save_device(*device, base);
      extmem::RunReader<std::int32_t> reader(*device, report.output);
      std::vector<std::int32_t> sorted;
      sorted.reserve(static_cast<std::size_t>(n));
      while (!reader.empty()) sorted.push_back(reader.next());
      write_binary(opt.files[1], sorted);
      std::cerr << "mpsort: xsorted " << n << " records in "
                << timer.seconds() * 1e3 << " ms (runs_formed="
                << report.runs_formed << " segments_merged="
                << report.segments_merged << " ranks_exchanged="
                << report.ranks_exchanged << " checkpoints="
                << report.checkpoints << " resumes=" << report.resumes
                << ")\n";
      return 0;
    } catch (const pipeline::CrashError& error) {
      // Injected process death: persist the device exactly as the crash
      // left it (last durable checkpoint included) and hand the resume
      // token to the next incarnation.
      save_device(*device, base);
      std::cerr << "mpsort: " << error.what()
                << "; device image saved, rerun with --resume\n";
      return 3;
    }
  } catch (const pipeline::ManifestError& error) {
    std::cerr << "mpsort: manifest unrecoverable: " << error.what()
              << "; full restart (without --resume) required\n";
    return 4;
  } catch (const extmem::IoError& error) {
    std::cerr << "mpsort: xsort failed: " << error.what() << "\n";
    return 1;
  } catch (const dist::NetError& error) {
    std::cerr << "mpsort: xsort failed: " << error.what() << "\n";
    return 1;
  }
}

int run_command(const std::string& command, const Options& opt) {
  if ((opt.fault_rate > 0.0 || opt.lane_fault_rate > 0.0) &&
      !(command == "sort" && opt.binary)) {
    std::cerr << "--fault-rate/--lane-fault-rate require `sort --binary` "
                 "(the fallible paths)\n";
    usage();
  }
  if (opt.fault_rate > 0.0 && opt.lane_fault_rate > 0.0) {
    std::cerr << "--fault-rate and --lane-fault-rate are separate drills; "
                 "pick one\n";
    usage();
  }
  if (command == "xsort") return run_xsort(opt);
  if (command == "sort") {
    if (opt.files.size() != 2) usage();
    if (opt.binary && opt.fault_rate > 0.0) return run_fault_sort(opt);
    if (opt.binary && opt.lane_fault_rate > 0.0)
      return run_lane_fault_sort(opt);
    if (opt.binary)
      return run_sort(opt, read_binary(opt.files[0]), std::less<>{},
                      write_binary);
    if (opt.numeric)
      return run_sort(opt, read_lines(opt.files[0]), NumericLess{},
                      write_lines);
    return run_sort(opt, read_lines(opt.files[0]), std::less<>{},
                    write_lines);
  }
  if (command == "merge") {
    if (opt.files.size() < 3) usage();
    if (opt.binary) {
      std::vector<std::vector<std::int32_t>> inputs;
      for (std::size_t f = 1; f < opt.files.size(); ++f)
        inputs.push_back(read_binary(opt.files[f]));
      return run_merge(opt, std::move(inputs), std::less<>{}, write_binary);
    }
    std::vector<std::vector<std::string>> inputs;
    for (std::size_t f = 1; f < opt.files.size(); ++f)
      inputs.push_back(read_lines(opt.files[f]));
    if (opt.numeric)
      return run_merge(opt, std::move(inputs), NumericLess{}, write_lines);
    return run_merge(opt, std::move(inputs), std::less<>{}, write_lines);
  }
  if (command == "check") {
    if (opt.files.size() != 1) usage();
    if (opt.binary)
      return run_check(opt.files[0], read_binary(opt.files[0]),
                       std::less<>{});
    if (opt.numeric)
      return run_check(opt.files[0], read_lines(opt.files[0]),
                       NumericLess{});
    return run_check(opt.files[0], read_lines(opt.files[0]), std::less<>{});
  }
  usage();
}

/// Disarms the recorders and writes the requested artifacts. Runs after
/// the command returns, when all instrumented work is quiescent.
void finalize_observability(const Options& opt) {
  if (!opt.trace_path.empty()) {
    obs::disarm_tracing();
    if (!obs::kTraceCompiledIn)
      std::cerr << "mpsort: tracing compiled out (MERGEPATH_TRACE=OFF); "
                   "writing an empty trace\n";
    obs::write_chrome_trace_file(opt.trace_path);
    std::cerr << "trace written to " << opt.trace_path << "\n";
  }
  if (opt.metrics || !opt.metrics_json.empty() ||
      !opt.prometheus_path.empty()) {
    obs::LaneMetrics::instance().disarm();
    obs::disarm_span_stats();
    if (opt.metrics) {
      const obs::LaneReport report = obs::LaneMetrics::instance().snapshot();
      report.to_table().print(std::cerr);
      std::cerr << "jobs " << report.jobs << ", barrier waits "
                << report.barrier_waits << " (" << report.barrier_ns
                << " ns), checkouts " << report.checkouts << " ("
                << report.checkout_ns << " ns)\n"
                << "lane time max/mean imbalance "
                << report.imbalance << "\n";
      const std::vector<obs::SpanStat> stats = obs::span_stats_snapshot();
      if (!stats.empty()) {
        Table table({"span", "count", "p50_us", "p95_us", "p99_us",
                     "max_us", "total_ms"});
        for (const obs::SpanStat& stat : stats)
          table.add_row(
              {stat.name, std::to_string(stat.count),
               fmt_double(static_cast<double>(stat.p50_ns) / 1e3, 2),
               fmt_double(static_cast<double>(stat.p95_ns) / 1e3, 2),
               fmt_double(static_cast<double>(stat.p99_ns) / 1e3, 2),
               fmt_double(static_cast<double>(stat.max_ns) / 1e3, 2),
               fmt_double(static_cast<double>(stat.sum_ns) / 1e6, 3)});
        table.print(std::cerr);
      }
    }
    if (!opt.metrics_json.empty() &&
        obs::write_metrics_json_file(opt.metrics_json))
      std::cerr << "metrics written to " << opt.metrics_json << "\n";
    if (!opt.prometheus_path.empty() &&
        obs::export_prometheus_file(opt.prometheus_path))
      std::cerr << "prometheus metrics written to " << opt.prometheus_path
                << "\n";
  }
  // Flight recorder: --flight-dump forces a snapshot; otherwise a dump
  // destination (flag or MP_FLIGHT_DUMP) only fires if the run degraded.
  if (!opt.flight_dump.empty()) obs::set_flight_dump_path(opt.flight_dump);
  obs::flight_write_pending(/*force=*/!opt.flight_dump.empty());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) usage();
  const std::string command = argv[1];
  const Options opt = parse(argc, argv, 2);

  std::cerr << "mpsort: " << kernels::kernel_banner() << "\n";

  if (opt.metrics || !opt.metrics_json.empty() ||
      !opt.prometheus_path.empty()) {
    obs::LaneMetrics::instance().arm();
    obs::reset_span_stats();
    obs::arm_span_stats();
  }
  if (!opt.trace_path.empty()) obs::arm_tracing();

  const int rc = run_command(command, opt);
  finalize_observability(opt);
  return rc;
}
