// traceprof — offline analyzer for mergepath Chrome-JSON traces.
//
//   traceprof <trace.json> [--top N] [--json <out.json>]
//
// Reads a trace exported by `mpsort --trace`, the bench harnesses or the
// flight recorder (`mpsort --flight-dump`), reconstructs the span DAG per
// thread from the complete ("X") events, and reports:
//
//  - the critical path: the chain of leaf span segments that ends at the
//    latest event and, walking backwards, always continues through the
//    segment that finished last before the chain's current start. Time on
//    the chain is attributed to the owning span's name; gaps where no
//    segment was running become "(wait)". Merge Path guarantees equal
//    per-lane *work* (Green et al., IPPS 2012), so on a balanced run the
//    critical path is ~wall-clock of one lane — anything longer than the
//    busiest worker is scheduling/idle time, which this attribution
//    exposes by name.
//  - per-worker run/steal/idle breakdowns for TaskScheduler traces: busy
//    time (root spans), idle (window minus busy, including `sched.idle`
//    sleep), task counts (`sched.task`), steals/spawns (`sched.steal` /
//    `sched.spawn` instants).
//
// The critical path over complete events is a heuristic (the trace has no
// explicit dependency edges); it is exact for fork-join traces where a
// parent's residual segments resume when its children finish — which is
// what the ThreadPool and TaskScheduler emit.
//
// --json writes a machine-readable report (schema mergepath-traceprof-v1)
// that scripts/check_trace.py validates in CI. The parser below is a
// minimal recursive-descent JSON reader: the repo has no JSON dependency,
// and traces are machine-written, so strictness beats completeness.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/table.hpp"

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser.

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  const Value* find(const std::string& key) const {
    if (type != Type::kObject) return nullptr;
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Value parse() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing data");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    skip_ws();
    Value v;
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"':
        v.type = Value::Type::kString;
        v.str = parse_string();
        return v;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        v.type = Value::Type::kBool;
        v.boolean = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        v.type = Value::Type::kBool;
        v.boolean = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return v;
      default: return parse_number();
    }
  }

  Value parse_object() {
    Value v;
    v.type = Value::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    Value v;
    v.type = Value::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("bad escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          // Trace names are ASCII; map anything else to '?'.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    Value v;
    v.type = Value::Type::kNumber;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Trace model.

/// The exporter writes microseconds with three decimals (ns precision);
/// ×1000 + round recovers exact integer nanoseconds.
std::uint64_t micros_to_ns(double us) {
  return static_cast<std::uint64_t>(std::llround(us * 1000.0));
}

struct SpanRec {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint32_t tid = 0;
  std::string name;
};

/// A maximal interval where a span runs its own code (no child active).
struct Segment {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint32_t tid = 0;
  const std::string* name = nullptr;
};

struct WorkerStats {
  std::uint32_t tid = 0;
  std::uint64_t busy_ns = 0;   ///< root spans (excluding sched.idle)
  std::uint64_t sleep_ns = 0;  ///< sched.idle span time
  std::uint64_t idle_ns = 0;   ///< window − busy
  std::uint64_t tasks = 0;     ///< sched.task spans
  std::uint64_t steals = 0;    ///< sched.steal instants
  std::uint64_t spawns = 0;    ///< sched.spawn instants
};

struct PathEntry {
  std::string name;
  std::uint64_t ns = 0;
  std::uint64_t count = 0;  ///< segments attributed to this name
};

struct Analysis {
  std::uint64_t wall_ns = 0;
  std::size_t events = 0;
  std::size_t span_count = 0;
  std::string clock = "unknown";
  std::vector<PathEntry> critical_path;  ///< descending by ns
  std::uint64_t critical_total_ns = 0;
  std::vector<WorkerStats> workers;      ///< ascending tid
  bool flight = false;
  std::string degrade_reason;
};

/// Splits one thread's spans into leaf segments and per-worker stats.
/// `spans` must be sorted by (begin asc, end desc) — parents first.
void analyze_thread(std::vector<SpanRec>& spans, WorkerStats& stats,
                    std::vector<Segment>& segments) {
  std::sort(spans.begin(), spans.end(),
            [](const SpanRec& x, const SpanRec& y) {
              if (x.begin != y.begin) return x.begin < y.begin;
              return x.end > y.end;
            });

  // Nesting sweep: stack of open spans; `cursor[depth]` tracks how far the
  // open span at that depth has already been accounted for (by children).
  struct Open {
    const SpanRec* span;
    std::uint64_t cursor;  ///< next unaccounted instant inside the span
  };
  std::vector<Open> stack;
  const auto close_to = [&](std::uint64_t limit) {
    // Pop spans that end at or before `limit`, emitting their tail
    // segments.
    while (!stack.empty() && stack.back().span->end <= limit) {
      Open open = stack.back();
      stack.pop_back();
      if (open.span->end > open.cursor && open.span->name != "sched.idle")
        segments.push_back(Segment{open.cursor, open.span->end,
                                   open.span->tid, &open.span->name});
      if (!stack.empty())
        stack.back().cursor =
            std::max(stack.back().cursor, open.span->end);
    }
  };

  for (const SpanRec& span : spans) {
    close_to(span.begin);
    if (stack.empty()) {
      if (span.name == "sched.idle")
        stats.sleep_ns += span.end - span.begin;
      else
        stats.busy_ns += span.end - span.begin;
    }
    if (span.name == "sched.task") ++stats.tasks;
    if (!stack.empty() && span.begin > stack.back().cursor) {
      // The parent ran its own code up to this child's start.
      const Open& parent = stack.back();
      if (parent.span->name != "sched.idle")
        segments.push_back(Segment{parent.cursor, span.begin,
                                   parent.span->tid, &parent.span->name});
    }
    if (!stack.empty())
      stack.back().cursor = std::max(stack.back().cursor, span.begin);
    stack.push_back(Open{&span, span.begin});
  }
  close_to(~std::uint64_t{0});
}

/// Backward last-finisher walk over the leaf segments of every thread.
void critical_path(std::vector<Segment> segments, std::uint64_t window_begin,
                   std::uint64_t window_end, Analysis& out) {
  segments.erase(std::remove_if(segments.begin(), segments.end(),
                                [](const Segment& s) {
                                  return s.end <= s.begin;
                                }),
                 segments.end());
  std::sort(segments.begin(), segments.end(),
            [](const Segment& x, const Segment& y) {
              return x.end < y.end;
            });

  std::map<std::string, PathEntry> entries;
  const auto charge = [&](const std::string& name, std::uint64_t ns) {
    PathEntry& entry = entries[name];
    entry.name = name;
    entry.ns += ns;
    ++entry.count;
  };

  std::uint64_t cursor = window_end;
  std::uint32_t prev_tid = ~std::uint32_t{0};
  while (cursor > window_begin) {
    // Latest-finishing segment at or before the cursor.
    auto it = std::upper_bound(
        segments.begin(), segments.end(), cursor,
        [](std::uint64_t t, const Segment& s) { return t < s.end; });
    if (it == segments.begin()) {
      charge("(wait)", cursor - window_begin);
      break;
    }
    --it;
    // Among ties on end, stay on the previous thread when possible (a
    // span resuming after its child is the true dependency).
    auto pick = it;
    for (auto scan = it;
         scan->end == it->end;
         --scan) {
      if (scan->tid == prev_tid) {
        pick = scan;
        break;
      }
      if (scan == segments.begin()) break;
    }
    if (pick->end < cursor) charge("(wait)", cursor - pick->end);
    const std::uint64_t begin = std::max(pick->begin, window_begin);
    charge(*pick->name, pick->end - begin);
    prev_tid = pick->tid;
    cursor = begin;
  }

  for (auto& [name, entry] : entries) {
    out.critical_total_ns += entry.ns;
    out.critical_path.push_back(entry);
  }
  std::sort(out.critical_path.begin(), out.critical_path.end(),
            [](const PathEntry& x, const PathEntry& y) {
              if (x.ns != y.ns) return x.ns > y.ns;
              return x.name < y.name;
            });
}

Analysis analyze(const Value& doc) {
  Analysis out;
  if (const Value* other = doc.find("otherData")) {
    if (const Value* clock = other->find("clock"))
      if (const Value* source = clock->find("source"))
        out.clock = source->str;
    if (const Value* flight = other->find("flight_recorder"))
      out.flight = flight->boolean;
    if (const Value* reason = other->find("reason"))
      out.degrade_reason = reason->str;
  }

  const Value* events = doc.find("traceEvents");
  if (!events || events->type != Value::Type::kArray)
    throw std::runtime_error("no traceEvents array in trace");

  std::map<std::uint32_t, std::vector<SpanRec>> spans_by_tid;
  std::map<std::uint32_t, WorkerStats> workers;
  std::uint64_t min_ts = ~std::uint64_t{0};
  std::uint64_t max_end = 0;
  for (const Value& event : events->array) {
    const Value* ph = event.find("ph");
    const Value* name = event.find("name");
    const Value* ts = event.find("ts");
    const Value* tid = event.find("tid");
    if (!ph || !name || !ts || !tid) continue;
    if (ph->str == "M") continue;
    ++out.events;
    const auto t = static_cast<std::uint32_t>(tid->number);
    const std::uint64_t begin = micros_to_ns(ts->number);
    WorkerStats& worker = workers[t];
    worker.tid = t;
    min_ts = std::min(min_ts, begin);
    max_end = std::max(max_end, begin);
    if (ph->str == "X") {
      const Value* dur = event.find("dur");
      SpanRec span;
      span.begin = begin;
      span.end = begin + (dur ? micros_to_ns(dur->number) : 0);
      span.tid = t;
      span.name = name->str;
      max_end = std::max(max_end, span.end);
      spans_by_tid[t].push_back(std::move(span));
      ++out.span_count;
    } else if (ph->str == "i") {
      if (name->str == "sched.steal") ++worker.steals;
      if (name->str == "sched.spawn") ++worker.spawns;
    }
  }

  if (out.events == 0 || max_end <= min_ts) {
    for (const auto& [t, worker] : workers) out.workers.push_back(worker);
    return out;
  }
  out.wall_ns = max_end - min_ts;

  std::vector<Segment> segments;
  for (auto& [t, spans] : spans_by_tid)
    analyze_thread(spans, workers[t], segments);
  for (auto& [t, worker] : workers) {
    worker.idle_ns =
        out.wall_ns > worker.busy_ns ? out.wall_ns - worker.busy_ns : 0;
    out.workers.push_back(worker);
  }

  critical_path(std::move(segments), min_ts, max_end, out);
  return out;
}

// ---------------------------------------------------------------------------
// Reports.

std::string fmt_ms(std::uint64_t ns) {
  return mp::fmt_double(static_cast<double>(ns) / 1e6, 3);
}

void print_report(const Analysis& analysis, std::size_t top) {
  std::cout << "traceprof: " << analysis.events << " events, "
            << analysis.span_count << " spans, " << analysis.workers.size()
            << " thread(s), wall " << fmt_ms(analysis.wall_ns)
            << " ms (clock: " << analysis.clock << ")\n";
  if (analysis.flight) {
    std::cout << "flight-recorder snapshot"
              << (analysis.degrade_reason.empty()
                      ? std::string(" (on demand)")
                      : " (degraded: " + analysis.degrade_reason + ")")
              << "\n";
  }
  if (analysis.events == 0) {
    std::cout << "empty trace — nothing to analyze\n";
    return;
  }

  std::cout << "\ncritical path: " << fmt_ms(analysis.critical_total_ns)
            << " ms attributed across " << analysis.critical_path.size()
            << " span name(s)\n";
  mp::Table path_table({"span", "time_ms", "cp_share", "segments"});
  std::size_t shown = 0;
  for (const PathEntry& entry : analysis.critical_path) {
    if (shown++ >= top) break;
    const double share =
        analysis.critical_total_ns
            ? 100.0 * static_cast<double>(entry.ns) /
                  static_cast<double>(analysis.critical_total_ns)
            : 0.0;
    path_table.add_row({entry.name, fmt_ms(entry.ns),
                        mp::fmt_double(share, 1) + "%",
                        std::to_string(entry.count)});
  }
  path_table.print(std::cout);

  std::cout << "\nper-worker breakdown (window " << fmt_ms(analysis.wall_ns)
            << " ms)\n";
  mp::Table worker_table({"tid", "busy_ms", "idle_ms", "busy_pct", "tasks",
                          "steals", "spawns", "sleep_ms"});
  for (const WorkerStats& worker : analysis.workers) {
    const double pct =
        analysis.wall_ns
            ? 100.0 * static_cast<double>(worker.busy_ns) /
                  static_cast<double>(analysis.wall_ns)
            : 0.0;
    worker_table.add_row(
        {std::to_string(worker.tid), fmt_ms(worker.busy_ns),
         fmt_ms(worker.idle_ns), mp::fmt_double(pct, 1) + "%",
         std::to_string(worker.tasks), std::to_string(worker.steals),
         std::to_string(worker.spawns), fmt_ms(worker.sleep_ns)});
  }
  worker_table.print(std::cout);
}

void write_json_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

bool write_json_report(const Analysis& analysis, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "traceprof: cannot write " << path << "\n";
    return false;
  }
  out << "{\"schema\":\"mergepath-traceprof-v1\",\"wall_ns\":"
      << analysis.wall_ns << ",\"events\":" << analysis.events
      << ",\"spans\":" << analysis.span_count << ",\"clock\":\""
      << analysis.clock << "\",\"flight\":"
      << (analysis.flight ? "true" : "false")
      << ",\"critical_path\":{\"total_ns\":" << analysis.critical_total_ns
      << ",\"entries\":[";
  bool first = true;
  for (const PathEntry& entry : analysis.critical_path) {
    if (!first) out << ',';
    first = false;
    out << "\n{\"name\":";
    write_json_escaped(out, entry.name);
    out << ",\"ns\":" << entry.ns << ",\"segments\":" << entry.count << '}';
  }
  out << "]},\"workers\":[";
  first = true;
  for (const WorkerStats& worker : analysis.workers) {
    if (!first) out << ',';
    first = false;
    out << "\n{\"tid\":" << worker.tid << ",\"busy_ns\":" << worker.busy_ns
        << ",\"idle_ns\":" << worker.idle_ns
        << ",\"sleep_ns\":" << worker.sleep_ns
        << ",\"tasks\":" << worker.tasks << ",\"steals\":" << worker.steals
        << ",\"spawns\":" << worker.spawns << '}';
  }
  out << "]}\n";
  return out.good();
}

[[noreturn]] void usage() {
  std::cerr << "usage: traceprof <trace.json> [--top N] [--json <out>]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string json_path;
  std::size_t top = 20;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--top") {
      if (++i >= argc) usage();
      top = static_cast<std::size_t>(std::stoul(argv[i]));
    } else if (arg == "--json") {
      if (++i >= argc) usage();
      json_path = argv[i];
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
    } else if (trace_path.empty()) {
      trace_path = arg;
    } else {
      usage();
    }
  }
  if (trace_path.empty()) usage();

  std::ifstream in(trace_path);
  if (!in) {
    std::cerr << "traceprof: cannot read " << trace_path << "\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  try {
    JsonParser parser(text);
    const Value doc = parser.parse();
    const Analysis analysis = analyze(doc);
    print_report(analysis, top);
    if (!json_path.empty() && !write_json_report(analysis, json_path))
      return 1;
  } catch (const std::exception& error) {
    std::cerr << "traceprof: " << trace_path << ": " << error.what() << "\n";
    return 1;
  }
  return 0;
}
